(** Reverse-mode automatic differentiation over the layer IR.

    This is the numeric ground truth behind the workload-level backward
    model in {!Training}: gradients computed here are validated against
    finite differences by property tests, and the GEMM structure of each
    op's gradient (dX = dY.W^T, dW = X^T.dY) is exactly what
    {!Training.backward_of_node} charges to the cube.

    Supported: every operator the zoo uses.  Batch_norm differentiates
    in its inference form (frozen statistics): gradients flow to gamma /
    beta and through the normalisation, not to the running moments. *)

type gradients = {
  input_grads : (string * Ascend_tensor.Tensor.t) list;
      (** by input-node name *)
  param_grads : (string * Ascend_tensor.Tensor.t) list;
      (** by parameter (node) name; same shapes as the parameters *)
}

val backward :
  Graph.t -> Eval.params ->
  inputs:(string * Ascend_tensor.Tensor.t) list ->
  ?loss_grad:Ascend_tensor.Tensor.t ->
  unit -> gradients
(** Forward-evaluate, then backpropagate from the (single) output node.
    [loss_grad] defaults to all-ones (i.e. the loss is the sum of the
    output entries).  Raises [Invalid_argument] on shape mismatch, a
    missing input, or a graph with no output. *)

val loss :
  Graph.t -> Eval.params ->
  inputs:(string * Ascend_tensor.Tensor.t) list -> float
(** Sum of the output tensor — the scalar the default [backward]
    differentiates; used by the finite-difference tests. *)

val numeric_param_grad :
  Graph.t -> Eval.params ->
  inputs:(string * Ascend_tensor.Tensor.t) list ->
  param:string -> index:int -> ?eps:float -> unit -> float
(** Central finite difference of {!loss} w.r.t. one parameter entry. *)
