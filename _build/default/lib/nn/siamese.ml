module Shape = Ascend_tensor.Shape

let tower_channels = [ 96; 256; 384; 384; 256 ]

(* AlexNet-ish SiamFC backbone: five conv stages, two early maxpools *)
let tower g ~tag x =
  let conv ?stride ?padding ~cout ~k name x =
    let c = Graph.conv2d g ~name:(tag ^ "." ^ name) ?stride ?padding ~cout ~k x in
    let b = Graph.batch_norm g ~name:(tag ^ "." ^ name ^ ".bn") c in
    Graph.relu g ~name:(tag ^ "." ^ name ^ ".relu") b
  in
  let x = conv ~stride:2 ~cout:(List.nth tower_channels 0) ~k:11 "conv1" x in
  let x = Graph.max_pool g ~name:(tag ^ ".pool1") ~kernel:3 ~stride:2 x in
  let x = conv ~cout:(List.nth tower_channels 1) ~k:5 "conv2" x in
  let x = Graph.max_pool g ~name:(tag ^ ".pool2") ~kernel:3 ~stride:2 x in
  let x = conv ~padding:1 ~cout:(List.nth tower_channels 2) ~k:3 "conv3" x in
  let x = conv ~padding:1 ~cout:(List.nth tower_channels 3) ~k:3 "conv4" x in
  Graph.conv2d g ~name:(tag ^ ".conv5") ~cout:(List.nth tower_channels 4) ~k:3 x

let build ?(batch = 1) ?(dtype = Ascend_arch.Precision.Fp16) () =
  let g = Graph.create ~name:"siamese_tracker" ~dtype in
  let exemplar =
    Graph.input g ~name:"exemplar" (Shape.nchw ~n:batch ~c:3 ~h:127 ~w:127)
  in
  let search =
    Graph.input g ~name:"search" (Shape.nchw ~n:batch ~c:3 ~h:255 ~w:255)
  in
  let ze = tower g ~tag:"exemplar_tower" exemplar in
  let zs = tower g ~tag:"search_tower" search in
  (* cross-correlation as a GEMM: exemplar features (c x he*we) against
     search features (c x hs*ws) -> response (he*we) x (hs*ws) *)
  let feat_dims node =
    match Shape.to_list (Graph.find g node).out_shape with
    | [ n; c; h; w ] -> (n, c, h, w)
    | _ -> invalid_arg "Siamese.build: tower output not NCHW"
  in
  let n, c, he, we = feat_dims ze in
  let _, _, hs, ws = feat_dims zs in
  let qe =
    Graph.reshape g ~name:"exemplar.flat" [ n * c; he * we ] ze
  in
  let qe = Graph.transpose_last_two g ~name:"exemplar.T" qe in
  let qs = Graph.reshape g ~name:"search.flat" [ n * c; hs * ws ] zs in
  let resp = Graph.matmul g ~name:"xcorr" qe qs in
  let score = Graph.softmax g ~name:"response" resp in
  ignore (Graph.output g ~name:"score_map" score);
  g
