(** Two-stage detector backbone+neck+RPN in the Mask-RCNN family (paper
    Table 1: "MaskRCNN Series" are Ascend / Ascend 910 workloads): a
    ResNet-18 backbone tapped at four scales, an FPN top-down pathway
    (lateral 1x1 convolutions + nearest upsample + add + smoothing 3x3),
    and a shared RPN head emitting objectness/box maps per pyramid
    level.  The RoI heads are represented by a pooled classification
    branch (the dominant compute is the backbone + FPN + RPN). *)

val build :
  ?batch:int -> ?dtype:Ascend_arch.Precision.t -> unit -> Graph.t
(** 512x512x3 input; P2..P5 pyramid with 256 channels. *)

val pyramid_channels : int
