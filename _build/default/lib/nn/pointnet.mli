(** PointNet-style point-cloud classifier (paper Table 1: the "Pointsnet
    Series" are Ascend-core workloads for autonomous driving / smart
    city).  The shared per-point MLP is expressed as 1x1 convolutions
    over an [N x 1] "image" of points — exactly the GEMM the cube runs —
    followed by a global pool (the symmetric aggregation function) and an
    FC head. *)

val build :
  ?batch:int -> ?points:int -> ?classes:int ->
  ?dtype:Ascend_arch.Precision.t -> unit -> Graph.t
(** Defaults: 1024 points, 40 classes (ModelNet40-like), fp16. *)
