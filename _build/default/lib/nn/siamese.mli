(** Siamese tracking network (paper Table 1: "Siamese Tracking" is an
    Ascend-core workload): a SiamFC-style tracker — two weight-shared
    convolutional towers over the exemplar and the search window, joined
    by a cross-correlation expressed as a Matmul.  The two towers are
    independent until the join, so the §5.1 graph engine maps them to
    parallel streams. *)

val build :
  ?batch:int -> ?dtype:Ascend_arch.Precision.t -> unit -> Graph.t
(** Exemplar 127x127x3, search window 255x255x3, AlexNet-ish backbone. *)

val tower_channels : int list
(** Backbone channel progression, exposed for tests. *)
