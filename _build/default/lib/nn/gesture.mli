(** Gesture-inference CNN for the Ascend-Tiny scenario (paper §2.4,
    Figure 8): an int8 always-on network for mobile wake-up and
    human-computer interaction.  Huawei does not publish the topology, so
    this is a representative small CNN of regular (cube-friendly)
    convolutions over a 96x96 grayscale frame — every layer's
    cube/vector ratio stays above 1, matching Figure 8. *)

val build : ?batch:int -> unit -> Graph.t
(** int8 graph, 10 gesture classes. *)
