(** Per-node workload characterisation: how many MACs land on the cube,
    how many element operations land on the vector unit, and the data
    volumes each node moves.  This is the profiling the paper describes in
    §2.4 ("profile the typical DNN models and compare the computation
    workloads between the cube unit and the vector unit"). *)

type gemm = { count : int; m : int; k : int; n : int }
(** [count] identical GEMMs (e.g. one per attention head or per group). *)

type t = {
  cube_macs : int;          (** MACs executed on the cube unit *)
  vector_elems : float;     (** element-operations on the vector unit *)
  gemms : gemm list;        (** the cube work, in GEMM form, for tiling *)
  input_bytes : int;
  weight_bytes : int;
  output_bytes : int;
}

val zero : t
val combine : t -> t -> t
val gemm_macs : gemm -> int

val of_node : Graph.t -> Graph.node -> t
(** Characterise one node.  Depthwise convolutions are charged to the
    vector unit (one element-op per MAC); cube ops also charge the vector
    unit nothing — normalisation / activation nodes carry that cost. *)

val of_graph : Graph.t -> t
(** Sum over all nodes. *)

val total_flops : t -> float
(** 2 x cube_macs + vector element ops. *)

val pp : Format.formatter -> t -> unit
