(** ResNet-50 v1.5 (He et al. [30]; the paper's Table 7 / Figure 7
    workload).  v1.5 places the stride-2 convolution on the 3x3 of each
    downsampling bottleneck, matching the NVIDIA reference the paper
    benchmarks against. *)

val v1_5 :
  ?batch:int -> ?dtype:Ascend_arch.Precision.t -> unit -> Graph.t
(** 224x224x3 input, 1000-class head.  Default batch 1, fp16. *)

val v1_5_18 : ?batch:int -> ?dtype:Ascend_arch.Precision.t -> unit -> Graph.t
(** ResNet-18 (basic blocks) — a smaller stand-in used by tests. *)
