(** Post-training quantisation of a graph's parameters — the numeric
    side of the automotive low-precision trade (paper §3.3: "the
    precision of inference computing for each DNN model can be reduced
    as a trade-off between model accuracy and calculating time /
    energy").

    Weights are quantised per tensor (symmetric affine) to int8 or int4
    and dequantised back, so the forward pass runs through exactly the
    values the integer datapath would produce for the weights;
    activations stay in higher precision (the common weight-only PTQ
    setting). *)

type report = {
  dtype : Ascend_arch.Precision.t;
  parameters_quantized : int;
  mean_abs_error : float;      (** over the output tensor vs fp32 *)
  max_abs_error : float;
  output_snr_db : float;       (** signal-to-quantisation-noise ratio *)
}

val quantize_params :
  dtype:Ascend_arch.Precision.t -> Graph.t -> Eval.params -> Eval.params
(** A fresh parameter set with every weight passed through
    quantise/dequantise at [dtype].  Batch-norm statistics and embedding
    tables are quantised too.  Raises [Invalid_argument] on a float
    [dtype]. *)

val compare_outputs :
  Graph.t -> Eval.params ->
  inputs:(string * Ascend_tensor.Tensor.t) list ->
  dtype:Ascend_arch.Precision.t -> report
(** Run the graph with original and quantised parameters on the same
    inputs and measure the output degradation. *)
