(** Numeric forward execution of a graph on reference tensors — the golden
    model the compiled/simulated path is validated against, and the
    engine behind the runnable examples.

    [Reshape] nodes reinterpret storage in row-major order (exactly what
    the zoo builders assume for attention head split/merge). *)

type params
(** Learned tensors keyed by node name. *)

val random_params : ?seed:int -> Graph.t -> params
(** He/Glorot-style initialisation appropriate to each op. *)

val params_bytes : params -> int

val find_param : params -> string -> Ascend_tensor.Tensor.t option

val run :
  Graph.t -> params ->
  inputs:(string * Ascend_tensor.Tensor.t) list ->
  (string * Ascend_tensor.Tensor.t) list
(** Evaluate every node; returns (name, tensor) for each [Output] node.
    Raises [Invalid_argument] on missing inputs or shape mismatches. *)

val run_all :
  Graph.t -> params ->
  inputs:(string * Ascend_tensor.Tensor.t) list ->
  (int * Ascend_tensor.Tensor.t) list
(** Like {!run} but returns every node's value keyed by node id — used by
    tests that compare intermediate values against reference operators. *)
