module Shape = Ascend_tensor.Shape

type config = {
  sparse_fields : int;
  vocab_per_field : int;
  embedding_dim : int;
  hidden : int list;
}

let default_config =
  { sparse_fields = 26; vocab_per_field = 100_000; embedding_dim = 16;
    hidden = [ 1024; 512; 256 ] }

let build ?(batch = 1) ?(dtype = Ascend_arch.Precision.Fp16) cfg =
  if cfg.sparse_fields <= 0 || cfg.embedding_dim <= 0 then
    invalid_arg "Wide_deep.build: malformed config";
  let g = Graph.create ~name:"wide_and_deep" ~dtype in
  let ids =
    Graph.input g ~name:"feature_ids" (Shape.matrix batch cfg.sparse_fields)
  in
  (* deep path: one shared embedding table over all fields, flattened to
     (batch, fields*dim), then the MLP tower *)
  let emb =
    Graph.embedding g ~name:"embeddings"
      ~vocab_size:(cfg.sparse_fields * cfg.vocab_per_field)
      ~hidden:cfg.embedding_dim ids
  in
  let deep_in =
    Graph.reshape g ~name:"deep.flat"
      [ batch; cfg.sparse_fields * cfg.embedding_dim ]
      emb
  in
  let deep =
    List.fold_left
      (fun (i, x) width ->
        let fc =
          Graph.linear g
            ~name:(Printf.sprintf "deep.fc%d" i)
            ~out_features:width x
        in
        (i + 1, Graph.relu g ~name:(Printf.sprintf "deep.relu%d" i) fc))
      (0, deep_in) cfg.hidden
    |> snd
  in
  let deep_logit = Graph.linear g ~name:"deep.logit" ~out_features:1 deep in
  (* wide path: a linear model over the same embedded features (the
     cross-feature hashing is folded into the embedding lookup) *)
  let wide_logit = Graph.linear g ~name:"wide.logit" ~out_features:1 deep_in in
  let logit = Graph.add g ~name:"sum" deep_logit wide_logit in
  let prob = Graph.activation g ~name:"sigmoid" Op.Sigmoid logit in
  ignore (Graph.output g ~name:"ctr" prob);
  g

let default ?batch () = build ?batch default_config
