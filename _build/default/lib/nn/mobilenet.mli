(** MobileNet-V2 (Howard et al. [31]; the paper's Table 8 / Figure 6
    workload).  Inverted-residual blocks: 1x1 expand, 3x3 depthwise (which
    executes on the vector unit — the source of MobileNet's low
    cube/vector ratio), 1x1 project. *)

val v2 :
  ?batch:int -> ?width_mult:float -> ?dtype:Ascend_arch.Precision.t -> unit ->
  Graph.t
(** 224x224x3 input, 1000-class head.  Default batch 1, width 1.0, fp16. *)
