module Shape = Ascend_tensor.Shape
module Tensor = Ascend_tensor.Tensor
module Ops = Ascend_tensor.Ops

type params = (string, Tensor.t) Hashtbl.t

let find_param p name = Hashtbl.find_opt p name

let params_bytes p =
  Hashtbl.fold (fun _ t acc -> acc + Tensor.bytes t) p 0

let random_params ?(seed = 7) g =
  let rng = Ascend_util.Prng.create ~seed in
  let params : params = Hashtbl.create 64 in
  List.iter
    (fun (n : Graph.node) ->
      match n.inputs with
      | [ x ] -> (
        let input = (Graph.find g x).out_shape in
        match Op.weight_shape n.op ~input with
        | None -> ()
        | Some ws ->
          let fan_in =
            match Shape.to_list ws with
            | [ _cout; cin; kh; kw ] -> cin * kh * kw
            | [ infe; _outf ] -> infe
            | _ -> Shape.numel ws
          in
          let sigma =
            match n.op with
            | Op.Embedding _ -> 0.02
            | _ -> sqrt (2. /. float_of_int (max 1 fan_in))
          in
          let t =
            match n.op with
            | Op.Batch_norm ->
              (* rows: mean 0, var 1, gamma 1, beta 0 *)
              Tensor.init ws (fun idx ->
                  match idx.(0) with
                  | 0 -> 0.
                  | 1 -> 1.
                  | 2 -> 1.
                  | _ -> 0.)
            | _ ->
              Tensor.map
                (fun v -> v *. sigma)
                (Tensor.random rng ws)
          in
          Hashtbl.replace params n.node_name t)
      | _ -> ())
    (Graph.nodes g);
  params

let require_param params (n : Graph.node) =
  match Hashtbl.find_opt params n.node_name with
  | Some t -> t
  | None ->
    invalid_arg (Printf.sprintf "Eval: missing parameter for node %s" n.node_name)

let batched_matmul ~transpose_b a b =
  let da = Shape.to_list (Tensor.shape a) in
  let rev = List.rev da in
  match rev with
  | k :: m :: batch_rev ->
    let batch = List.fold_left ( * ) 1 batch_rev in
    let db = Shape.to_list (Tensor.shape b) in
    let rev_b = List.rev db in
    let last_b = List.hd rev_b and pre_b = List.hd (List.tl rev_b) in
    let n = if transpose_b then pre_b else last_b in
    let out_shape = Shape.of_list (List.rev (n :: m :: batch_rev)) in
    let out = Tensor.create out_shape in
    let a_data = Tensor.data a and b_data = Tensor.data b in
    let o_data = Tensor.data out in
    for bi = 0 to batch - 1 do
      let abase = bi * m * k in
      let bbase = bi * k * n in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          let acc = ref 0. in
          for p = 0 to k - 1 do
            let bv =
              if transpose_b then b_data.(bbase + (j * k) + p)
              else b_data.(bbase + (p * n) + j)
            in
            acc := !acc +. (a_data.(abase + (i * k) + p) *. bv)
          done;
          o_data.((bi * m * n) + (i * n) + j) <- !acc
        done
      done
    done;
    out
  | _ -> invalid_arg "Eval: matmul input rank < 2"

let linear_apply x w =
  (* x : (.. x in), w : in x out *)
  let dims = Shape.to_list (Tensor.shape x) in
  let infe = List.hd (List.rev dims) in
  let batch = List.fold_left ( * ) 1 dims / infe in
  let x2 = Tensor.reshape x (Shape.matrix batch infe) in
  let y = Ops.matmul x2 w in
  let out_dims = List.rev (Shape.dim (Tensor.shape w) 1 :: List.tl (List.rev dims)) in
  Tensor.reshape y (Shape.of_list out_dims)

let concat_tensors ~axis ts =
  let shapes = List.map Tensor.shape ts in
  let out_shape = Op.infer_shape (Op.Concat { axis }) shapes in
  let out = Tensor.create out_shape in
  let offset = ref 0 in
  List.iter
    (fun t ->
      let d = Shape.dim (Tensor.shape t) axis in
      Tensor.iteri
        (fun idx v ->
          let idx' = Array.copy idx in
          idx'.(axis) <- idx'.(axis) + !offset;
          Tensor.set out idx' v)
        t;
      offset := !offset + d)
    ts;
  out

let embedding_apply table ids ~hidden ~vocab =
  let id_dims = Shape.to_list (Tensor.shape ids) in
  let out_shape = Shape.of_list (id_dims @ [ hidden ]) in
  let out = Tensor.create out_shape in
  let n = Tensor.numel ids in
  let id_data = Tensor.data ids in
  let tab = Tensor.data table in
  let o = Tensor.data out in
  for i = 0 to n - 1 do
    let id = max 0 (min (vocab - 1) (int_of_float id_data.(i))) in
    Array.blit tab (id * hidden) o (i * hidden) hidden
  done;
  out

let eval_node params values (n : Graph.node) =
  let inputs = List.map (fun i -> Hashtbl.find values i) n.inputs in
  let result =
    match (n.op, inputs) with
    | Op.Input, _ -> Hashtbl.find values n.id
    | Op.Conv2d { stride; padding; groups; _ }, [ x ] ->
      let w = require_param params n in
      Ops.conv2d ~params:{ stride; padding; groups } x w
    | Op.Linear _, [ x ] -> linear_apply x (require_param params n)
    | Op.Matmul { transpose_b }, [ a; b ] -> batched_matmul ~transpose_b a b
    | Op.Pool { kind = Op.Max_pool; kernel; stride }, [ x ] ->
      Ops.max_pool2d x ~kernel ~stride
    | Op.Pool { kind = Op.Avg_pool; kernel; stride }, [ x ] ->
      Ops.avg_pool2d x ~kernel ~stride
    | Op.Global_avg_pool, [ x ] -> Ops.global_avg_pool x
    | Op.Activation Op.Relu, [ x ] -> Ops.relu x
    | Op.Activation Op.Relu6, [ x ] -> Ops.relu6 x
    | Op.Activation Op.Gelu, [ x ] -> Ops.gelu x
    | Op.Activation Op.Sigmoid, [ x ] -> Ops.sigmoid x
    | Op.Activation Op.Tanh, [ x ] -> Ops.tanh_ x
    | Op.Batch_norm, [ x ] ->
      let w = require_param params n in
      let c = Shape.dim (Tensor.shape w) 1 in
      let row r = Array.init c (fun i -> Tensor.get w [| r; i |]) in
      Ops.batch_norm_inference ~mean:(row 0) ~var:(Array.map Float.abs (row 1))
        ~gamma:(row 2) ~beta:(row 3) x
    | Op.Layer_norm, [ x ] -> Ops.layer_norm x
    | Op.Softmax, [ x ] -> Ops.softmax x
    | Op.Add, [ a; b ] -> Tensor.add a b
    | Op.Mul, [ a; b ] -> Tensor.mul a b
    | Op.Concat { axis }, ts -> concat_tensors ~axis ts
    | Op.Embedding { vocab_size; hidden }, [ ids ] ->
      embedding_apply (require_param params n) ids ~hidden ~vocab:vocab_size
    | Op.Upsample { factor }, [ x ] ->
      let out_shape = Op.infer_shape n.op [ Tensor.shape x ] in
      Tensor.init ~dtype:(Tensor.dtype x) out_shape (fun idx ->
          Tensor.get x
            [| idx.(0); idx.(1); idx.(2) / factor; idx.(3) / factor |])
    | Op.Reshape dims, [ x ] -> Tensor.reshape x (Shape.of_list dims)
    | Op.Transpose_last_two, [ x ] -> Tensor.transpose x
    | Op.Output, [ x ] -> x
    | _, _ ->
      invalid_arg (Printf.sprintf "Eval: malformed node %s" n.node_name)
  in
  Hashtbl.replace values n.id result

let run_all g params ~inputs =
  let values : (int, Tensor.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (n : Graph.node) ->
      match n.op with
      | Op.Input -> (
        match List.assoc_opt n.node_name inputs with
        | Some t ->
          if not (Shape.equal (Tensor.shape t) n.out_shape) then
            invalid_arg
              (Printf.sprintf "Eval: input %s has shape %s, expected %s"
                 n.node_name
                 (Shape.to_string (Tensor.shape t))
                 (Shape.to_string n.out_shape));
          Hashtbl.replace values n.id t
        | None ->
          invalid_arg (Printf.sprintf "Eval: missing input %s" n.node_name))
      | _ -> ())
    (Graph.nodes g);
  List.iter
    (fun (n : Graph.node) ->
      match n.op with Op.Input -> () | _ -> eval_node params values n)
    (Graph.nodes g);
  List.map (fun (n : Graph.node) -> (n.id, Hashtbl.find values n.id)) (Graph.nodes g)

let run g params ~inputs =
  let all = run_all g params ~inputs in
  List.filter_map
    (fun (n : Graph.node) ->
      match n.op with
      | Op.Output -> Some (n.node_name, List.assoc n.id all)
      | _ -> None)
    (Graph.nodes g)
