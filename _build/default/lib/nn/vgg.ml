module Shape = Ascend_tensor.Shape

let conv_relu g ~cout ~tag x =
  let c = Graph.conv2d g ~name:(tag ^ ".conv") ~padding:1 ~cout ~k:3 x in
  Graph.relu g ~name:(tag ^ ".relu") c

let v16 ?(batch = 1) ?(dtype = Ascend_arch.Precision.Fp16) () =
  let g = Graph.create ~name:"vgg16" ~dtype in
  let x = Graph.input g ~name:"image" (Shape.nchw ~n:batch ~c:3 ~h:224 ~w:224) in
  let stage x ~tag ~cout ~convs =
    let x = ref x in
    for i = 1 to convs do
      x := conv_relu g ~cout ~tag:(Printf.sprintf "%s.%d" tag i) !x
    done;
    Graph.max_pool g ~name:(tag ^ ".pool") ~kernel:2 ~stride:2 !x
  in
  let x = stage x ~tag:"stage1" ~cout:64 ~convs:2 in
  let x = stage x ~tag:"stage2" ~cout:128 ~convs:2 in
  let x = stage x ~tag:"stage3" ~cout:256 ~convs:3 in
  let x = stage x ~tag:"stage4" ~cout:512 ~convs:3 in
  let x = stage x ~tag:"stage5" ~cout:512 ~convs:3 in
  let x = Graph.reshape g ~name:"flatten" [ batch; 512 * 7 * 7 ] x in
  let x = Graph.linear g ~name:"fc6" ~out_features:4096 x in
  let x = Graph.relu g ~name:"fc6.relu" x in
  let x = Graph.linear g ~name:"fc7" ~out_features:4096 x in
  let x = Graph.relu g ~name:"fc7.relu" x in
  let x = Graph.linear g ~name:"fc8" ~out_features:1000 x in
  let x = Graph.softmax g ~name:"prob" x in
  ignore (Graph.output g ~name:"logits" x);
  g
