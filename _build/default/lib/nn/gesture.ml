module Shape = Ascend_tensor.Shape

let conv_relu g ?stride ?padding ~cout ~k ~tag x =
  let c = Graph.conv2d g ~name:(tag ^ ".conv") ?stride ?padding ~cout ~k x in
  Graph.relu g ~name:(tag ^ ".relu") c

let build ?(batch = 1) () =
  let g = Graph.create ~name:"gesture_net" ~dtype:Ascend_arch.Precision.Int8 in
  let x = Graph.input g ~name:"frame" (Shape.nchw ~n:batch ~c:1 ~h:96 ~w:96) in
  let x = conv_relu g ~stride:2 ~padding:1 ~cout:16 ~k:3 ~tag:"conv1" x in
  let x = conv_relu g ~padding:1 ~cout:32 ~k:3 ~tag:"conv2" x in
  let x = Graph.max_pool g ~name:"pool1" ~kernel:2 ~stride:2 x in
  let x = conv_relu g ~padding:1 ~cout:64 ~k:3 ~tag:"conv3" x in
  let x = Graph.max_pool g ~name:"pool2" ~kernel:2 ~stride:2 x in
  let x = conv_relu g ~padding:1 ~cout:128 ~k:3 ~tag:"conv4" x in
  let x = conv_relu g ~padding:1 ~cout:128 ~k:3 ~tag:"conv5" x in
  let x = Graph.global_avg_pool g ~name:"gap" x in
  (* classification by raw logits; the argmax runs on the scalar unit,
     keeping every profiled layer cube-anchored as in Figure 8 *)
  let x = Graph.linear g ~name:"fc" ~out_features:10 x in
  ignore (Graph.output g ~name:"gesture" x);
  g
