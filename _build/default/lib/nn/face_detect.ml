module Shape = Ascend_tensor.Shape

let conv_relu g ?stride ?padding ~cout ~k ~tag x =
  let c = Graph.conv2d g ~name:(tag ^ ".conv") ?stride ?padding ~cout ~k x in
  Graph.relu g ~name:(tag ^ ".relu") c

let build ?(batch = 1) () =
  let g = Graph.create ~name:"swing_face_detect" ~dtype:Ascend_arch.Precision.Int8 in
  let x = Graph.input g ~name:"frame" (Shape.nchw ~n:batch ~c:1 ~h:64 ~w:64) in
  let x = conv_relu g ~padding:1 ~cout:8 ~k:3 ~tag:"stem" x in
  let x = conv_relu g ~stride:2 ~padding:1 ~cout:16 ~k:3 ~tag:"down1" x in
  let x = conv_relu g ~padding:1 ~cout:16 ~k:3 ~tag:"body1" x in
  let x = conv_relu g ~stride:2 ~padding:1 ~cout:32 ~k:3 ~tag:"down2" x in
  let x = conv_relu g ~padding:1 ~cout:32 ~k:3 ~tag:"body2" x in
  (* anchor-free head: 1 face-score channel + 4 box offsets per cell *)
  let head = Graph.conv2d g ~name:"head.conv" ~cout:5 ~k:1 x in
  let score = Graph.activation g ~name:"head.sigmoid" Op.Sigmoid head in
  ignore (Graph.output g ~name:"detections" score);
  g
