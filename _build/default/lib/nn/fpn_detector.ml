module Shape = Ascend_tensor.Shape

let pyramid_channels = 256

let conv_bn_relu g ?stride ?padding ~cout ~k ~tag x =
  let c = Graph.conv2d g ~name:(tag ^ ".conv") ?stride ?padding ~cout ~k x in
  let b = Graph.batch_norm g ~name:(tag ^ ".bn") c in
  Graph.relu g ~name:(tag ^ ".relu") b

let basic_block g ~tag ~cout ~stride ~project x =
  let a = conv_bn_relu g ~stride ~padding:1 ~cout ~k:3 ~tag:(tag ^ ".a") x in
  let b = Graph.conv2d g ~name:(tag ^ ".b.conv") ~padding:1 ~cout ~k:3 a in
  let b = Graph.batch_norm g ~name:(tag ^ ".b.bn") b in
  let shortcut =
    if project then
      Graph.batch_norm g
        ~name:(tag ^ ".down.bn")
        (Graph.conv2d g ~name:(tag ^ ".down.conv") ~stride ~cout ~k:1 x)
    else x
  in
  Graph.relu g ~name:(tag ^ ".out") (Graph.add g ~name:(tag ^ ".add") b shortcut)

let build ?(batch = 1) ?(dtype = Ascend_arch.Precision.Fp16) () =
  let g = Graph.create ~name:"fpn_detector" ~dtype in
  let x = Graph.input g ~name:"image" (Shape.nchw ~n:batch ~c:3 ~h:512 ~w:512) in
  (* backbone: ResNet-18 topology with taps after each stage *)
  let x = conv_bn_relu g ~stride:2 ~padding:3 ~cout:64 ~k:7 ~tag:"stem" x in
  (* 2x2 pool keeps every pyramid level a power of two so the top-down
     upsample+add shapes line up *)
  let x = Graph.max_pool g ~name:"stem.pool" ~kernel:2 ~stride:2 x in
  let stage tag cout stride x =
    let x = basic_block g ~tag:(tag ^ ".0") ~cout ~stride ~project:true x in
    basic_block g ~tag:(tag ^ ".1") ~cout ~stride:1 ~project:false x
  in
  let c2 = stage "layer1" 64 1 x in
  let c3 = stage "layer2" 128 2 c2 in
  let c4 = stage "layer3" 256 2 c3 in
  let c5 = stage "layer4" 512 2 c4 in
  (* FPN: lateral 1x1s, top-down upsample+add, 3x3 smoothing *)
  let lateral tag c = Graph.conv2d g ~name:(tag ^ ".lateral") ~cout:pyramid_channels ~k:1 c in
  let p5 = lateral "p5" c5 in
  let top_down tag upper lateral_feat =
    let up = Graph.upsample g ~name:(tag ^ ".upsample") ~factor:2 upper in
    Graph.add g ~name:(tag ^ ".merge") up lateral_feat
  in
  let p4 = top_down "p4" p5 (lateral "p4" c4) in
  let p3 = top_down "p3" p4 (lateral "p3" c3) in
  let p2 = top_down "p2" p3 (lateral "p2" c2) in
  let smooth tag p =
    Graph.conv2d g ~name:(tag ^ ".smooth") ~padding:1 ~cout:pyramid_channels ~k:3 p
  in
  let pyramid = [ ("p2", smooth "p2" p2); ("p3", smooth "p3" p3);
                  ("p4", smooth "p4" p4); ("p5", smooth "p5" p5) ] in
  (* shared RPN head per level: 3x3 conv + 1x1 objectness (3 anchors) and
     1x1 box regression (12 channels), flattened and concatenated *)
  let rpn_outputs =
    List.concat_map
      (fun (tag, p) ->
        let h = conv_bn_relu g ~padding:1 ~cout:pyramid_channels ~k:3
            ~tag:("rpn." ^ tag) p
        in
        let obj = Graph.conv2d g ~name:("rpn." ^ tag ^ ".obj") ~cout:3 ~k:1 h in
        let box = Graph.conv2d g ~name:("rpn." ^ tag ^ ".box") ~cout:12 ~k:1 h in
        let flat node =
          let shape = (Graph.find g node).Graph.out_shape in
          Graph.reshape g [ batch; Shape.numel shape / batch ] node
        in
        [ flat obj; flat box ])
      pyramid
  in
  let proposals = Graph.concat g ~name:"rpn.proposals" ~axis:1 rpn_outputs in
  (* RoI-head stand-in: the pooled classification branch *)
  let pooled =
    Graph.global_avg_pool g ~name:"roi.pool" (List.assoc "p2" pyramid)
  in
  let cls = Graph.linear g ~name:"roi.cls" ~out_features:81 pooled in
  let cls = Graph.softmax g ~name:"roi.prob" cls in
  let cls_flat = Graph.reshape g [ batch; 81 ] cls in
  let out = Graph.concat g ~name:"detections" ~axis:1 [ proposals; cls_flat ] in
  ignore (Graph.output g ~name:"outputs" out);
  g
