module Tensor = Ascend_tensor.Tensor
module Quantize = Ascend_tensor.Quantize
module Precision = Ascend_arch.Precision

type report = {
  dtype : Precision.t;
  parameters_quantized : int;
  mean_abs_error : float;
  max_abs_error : float;
  output_snr_db : float;
}

let quantize_params ~dtype g params =
  if not (Precision.is_integer dtype) then
    invalid_arg "Quantized.quantize_params: integer dtype required";
  let fresh = Eval.random_params ~seed:0 g in
  (* replace every parameter of the fresh set with the round-tripped
     original (random_params gives us a params value of the right keys) *)
  List.iter
    (fun (n : Graph.node) ->
      match Eval.find_param params n.Graph.node_name with
      | None -> ()
      | Some w ->
        let p = Quantize.calibrate ~dtype w in
        let q = Quantize.round_trip p w in
        (match Eval.find_param fresh n.Graph.node_name with
        | Some slot ->
          for i = 0 to Tensor.numel slot - 1 do
            Tensor.set_flat slot i (Tensor.get_flat q i)
          done
        | None -> ()))
    (Graph.nodes g);
  fresh

let compare_outputs g params ~inputs ~dtype =
  let qparams = quantize_params ~dtype g params in
  let run p =
    match Eval.run g p ~inputs with
    | [ (_, t) ] -> t
    | _ -> invalid_arg "Quantized.compare_outputs: expected one output"
  in
  let reference = run params in
  let quantized = run qparams in
  let n = Tensor.numel reference in
  let abs_err = ref 0. and max_err = ref 0. in
  let signal = ref 0. and noise = ref 0. in
  for i = 0 to n - 1 do
    let r = Tensor.get_flat reference i and q = Tensor.get_flat quantized i in
    let e = Float.abs (r -. q) in
    abs_err := !abs_err +. e;
    max_err := Float.max !max_err e;
    signal := !signal +. (r *. r);
    noise := !noise +. ((r -. q) *. (r -. q))
  done;
  let count =
    List.fold_left
      (fun acc (node : Graph.node) ->
        match Eval.find_param params node.Graph.node_name with
        | Some w -> acc + Tensor.numel w
        | None -> acc)
      0 (Graph.nodes g)
  in
  {
    dtype;
    parameters_quantized = count;
    mean_abs_error = !abs_err /. float_of_int n;
    max_abs_error = !max_err;
    output_snr_db =
      (if !noise <= 0. then infinity
       else 10. *. log10 (!signal /. !noise));
  }
