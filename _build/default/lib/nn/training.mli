(** Backward-pass workload model for training profiling (Figures 5 and 9,
    Table 7's training throughput).

    Substitution note (DESIGN.md): rather than full numeric autodiff, the
    backward pass is modelled at workload level — the standard identities
    for each operator's gradient cost:

    - GEMM (M,K,N) backward = two GEMMs: dX = dY.W^T (M,N,K) and
      dW = X^T.dY (K,M,N), i.e. 2x forward MACs on the cube;
    - depthwise convolutions: 2x forward element-ops on the vector unit;
    - activations: one mask/derivative pass (more for gelu/tanh);
    - normalisations: the well-known 2-3x forward vector cost;
    - plus an SGD update of 3 vector element-ops per learned parameter.

    This reproduces the paper's observation that "during the backward SGD
    computing, the vector unit is used more frequently" (§3.1) while the
    cube/vector ratio still stays above 1 for most BERT layers (Fig 5). *)

val backward_of_node : Graph.t -> Graph.node -> Workload.t
(** Gradient-computation workload attributed to one forward node
    (including its parameter update). *)

val node_training_workload : Graph.t -> Graph.node -> Workload.t
(** forward + backward + update for the node. *)

val graph_training_workload : Graph.t -> Workload.t

val optimizer_vector_elems_per_param : float
(** 3.0 — read grad, momentum update, write weight. *)
