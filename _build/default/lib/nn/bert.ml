module Shape = Ascend_tensor.Shape

type config = {
  layers : int;
  hidden : int;
  heads : int;
  intermediate : int;
  vocab_size : int;
  max_position : int;
}

let base_config =
  { layers = 12; hidden = 768; heads = 12; intermediate = 3072;
    vocab_size = 30522; max_position = 512 }

let large_config =
  { layers = 24; hidden = 1024; heads = 16; intermediate = 4096;
    vocab_size = 30522; max_position = 512 }

let encoder_block g ~cfg ~batch ~seq ~tag x =
  let { hidden; heads; intermediate; _ } = cfg in
  let d = hidden / heads in
  let tokens = batch * seq in
  let q = Graph.linear g ~name:(tag ^ ".q") ~out_features:hidden x in
  let k = Graph.linear g ~name:(tag ^ ".k") ~out_features:hidden x in
  let v = Graph.linear g ~name:(tag ^ ".v") ~out_features:hidden x in
  let split nm n = Graph.reshape g ~name:(tag ^ nm) [ batch * heads; seq; d ] n in
  let qh = split ".q.split" q in
  let kh = split ".k.split" k in
  let vh = split ".v.split" v in
  let scores =
    Graph.matmul g ~name:(tag ^ ".scores") ~transpose_b:true qh kh
  in
  let probs = Graph.softmax g ~name:(tag ^ ".probs") scores in
  let ctx = Graph.matmul g ~name:(tag ^ ".context") probs vh in
  let merged = Graph.reshape g ~name:(tag ^ ".merge") [ tokens; hidden ] ctx in
  let attn_out = Graph.linear g ~name:(tag ^ ".attn.out") ~out_features:hidden merged in
  let res1 = Graph.add g ~name:(tag ^ ".attn.residual") attn_out x in
  let ln1 = Graph.layer_norm g ~name:(tag ^ ".attn.ln") res1 in
  let ffn1 = Graph.linear g ~name:(tag ^ ".ffn.1") ~out_features:intermediate ln1 in
  let act = Graph.gelu g ~name:(tag ^ ".ffn.gelu") ffn1 in
  let ffn2 = Graph.linear g ~name:(tag ^ ".ffn.2") ~out_features:hidden act in
  let res2 = Graph.add g ~name:(tag ^ ".ffn.residual") ffn2 ln1 in
  Graph.layer_norm g ~name:(tag ^ ".ffn.ln") res2

let build ?(batch = 1) ?(seq_len = 128) ?(dtype = Ascend_arch.Precision.Fp16)
    cfg =
  if cfg.hidden mod cfg.heads <> 0 then
    invalid_arg "Bert.build: hidden not divisible by heads";
  if seq_len > cfg.max_position then
    invalid_arg "Bert.build: seq_len exceeds max_position";
  let g = Graph.create ~name:"bert" ~dtype in
  let ids = Graph.input g ~name:"input_ids" (Shape.matrix batch seq_len) in
  let emb =
    Graph.embedding g ~name:"embeddings" ~vocab_size:cfg.vocab_size
      ~hidden:cfg.hidden ids
  in
  let emb_ln = Graph.layer_norm g ~name:"embeddings.ln" emb in
  let x =
    Graph.reshape g ~name:"tokens" [ batch * seq_len; cfg.hidden ] emb_ln
  in
  let x = ref x in
  for layer = 0 to cfg.layers - 1 do
    x :=
      encoder_block g ~cfg ~batch ~seq:seq_len
        ~tag:(Printf.sprintf "layer%d" layer)
        !x
  done;
  let pooled = Graph.linear g ~name:"pooler" ~out_features:cfg.hidden !x in
  let tanh = Graph.activation g ~name:"pooler.tanh" Op.Tanh pooled in
  ignore (Graph.output g ~name:"encoded" tanh);
  g

let large ?batch ?seq_len ?dtype () = build ?batch ?seq_len ?dtype large_config
let base ?batch ?seq_len ?dtype () = build ?batch ?seq_len ?dtype base_config
