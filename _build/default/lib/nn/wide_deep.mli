(** Wide & Deep recommendation model (paper Table 1: an Ascend-Max
    training workload): a wide linear path over cross-feature ids plus a
    deep MLP over concatenated feature embeddings — the sparse-embedding
    + dense-GEMM mix typical of recommender training. *)

type config = {
  sparse_fields : int;      (** number of categorical feature fields *)
  vocab_per_field : int;
  embedding_dim : int;
  hidden : int list;        (** deep-tower layer widths *)
}

val default_config : config
(** 26 fields x 100k vocab x 16-dim embeddings, 1024-512-256 deep tower
    (Criteo-like). *)

val build :
  ?batch:int -> ?dtype:Ascend_arch.Precision.t -> config -> Graph.t

val default : ?batch:int -> unit -> Graph.t
