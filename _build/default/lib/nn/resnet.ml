module Shape = Ascend_tensor.Shape

(* conv + folded batch-norm + relu, the fusion unit the compiler works on *)
let conv_bn_relu g ?(relu = true) ?stride ?padding ~cout ~k ~tag x =
  let c = Graph.conv2d g ~name:(tag ^ ".conv") ?stride ?padding ~cout ~k x in
  let b = Graph.batch_norm g ~name:(tag ^ ".bn") c in
  if relu then Graph.relu g ~name:(tag ^ ".relu") b else b

(* v1.5 bottleneck: 1x1 reduce, 3x3 (carries the stride), 1x1 expand *)
let bottleneck g ~tag ~cmid ~cout ~stride ~project x =
  let a = conv_bn_relu g ~cout:cmid ~k:1 ~tag:(tag ^ ".a") x in
  let b = conv_bn_relu g ~stride ~padding:1 ~cout:cmid ~k:3 ~tag:(tag ^ ".b") a in
  let c = conv_bn_relu g ~relu:false ~cout ~k:1 ~tag:(tag ^ ".c") b in
  let shortcut =
    if project then
      conv_bn_relu g ~relu:false ~stride ~cout ~k:1 ~tag:(tag ^ ".down") x
    else x
  in
  let s = Graph.add g ~name:(tag ^ ".add") c shortcut in
  Graph.relu g ~name:(tag ^ ".out") s

let stage g ~tag ~blocks ~cmid ~cout ~stride x =
  let x = ref (bottleneck g ~tag:(tag ^ ".0") ~cmid ~cout ~stride ~project:true x) in
  for i = 1 to blocks - 1 do
    x :=
      bottleneck g
        ~tag:(Printf.sprintf "%s.%d" tag i)
        ~cmid ~cout ~stride:1 ~project:false !x
  done;
  !x

let v1_5 ?(batch = 1) ?(dtype = Ascend_arch.Precision.Fp16) () =
  let g = Graph.create ~name:"resnet50_v1.5" ~dtype in
  let x = Graph.input g ~name:"image" (Shape.nchw ~n:batch ~c:3 ~h:224 ~w:224) in
  let x = conv_bn_relu g ~stride:2 ~padding:3 ~cout:64 ~k:7 ~tag:"stem" x in
  let x = Graph.max_pool g ~name:"stem.pool" ~kernel:3 ~stride:2 x in
  (* 3x3 maxpool stride 2 on 112 -> 55 without padding; the reference uses
     padding 1 -> 56, shapes stay consistent either way for profiling *)
  let x = stage g ~tag:"layer1" ~blocks:3 ~cmid:64 ~cout:256 ~stride:1 x in
  let x = stage g ~tag:"layer2" ~blocks:4 ~cmid:128 ~cout:512 ~stride:2 x in
  let x = stage g ~tag:"layer3" ~blocks:6 ~cmid:256 ~cout:1024 ~stride:2 x in
  let x = stage g ~tag:"layer4" ~blocks:3 ~cmid:512 ~cout:2048 ~stride:2 x in
  let x = Graph.global_avg_pool g ~name:"gap" x in
  let x = Graph.linear g ~name:"fc" ~out_features:1000 x in
  let x = Graph.softmax g ~name:"prob" x in
  ignore (Graph.output g ~name:"logits" x);
  g

let basic_block g ~tag ~cout ~stride ~project x =
  let a = conv_bn_relu g ~stride ~padding:1 ~cout ~k:3 ~tag:(tag ^ ".a") x in
  let b = conv_bn_relu g ~relu:false ~padding:1 ~cout ~k:3 ~tag:(tag ^ ".b") a in
  let shortcut =
    if project then
      conv_bn_relu g ~relu:false ~stride ~cout ~k:1 ~tag:(tag ^ ".down") x
    else x
  in
  let s = Graph.add g ~name:(tag ^ ".add") b shortcut in
  Graph.relu g ~name:(tag ^ ".out") s

let v1_5_18 ?(batch = 1) ?(dtype = Ascend_arch.Precision.Fp16) () =
  let g = Graph.create ~name:"resnet18" ~dtype in
  let x = Graph.input g ~name:"image" (Shape.nchw ~n:batch ~c:3 ~h:224 ~w:224) in
  let x = conv_bn_relu g ~stride:2 ~padding:3 ~cout:64 ~k:7 ~tag:"stem" x in
  let x = Graph.max_pool g ~name:"stem.pool" ~kernel:3 ~stride:2 x in
  let block tag cout stride project x = basic_block g ~tag ~cout ~stride ~project x in
  let x = block "layer1.0" 64 1 false x in
  let x = block "layer1.1" 64 1 false x in
  let x = block "layer2.0" 128 2 true x in
  let x = block "layer2.1" 128 1 false x in
  let x = block "layer3.0" 256 2 true x in
  let x = block "layer3.1" 256 1 false x in
  let x = block "layer4.0" 512 2 true x in
  let x = block "layer4.1" 512 1 false x in
  let x = Graph.global_avg_pool g ~name:"gap" x in
  let x = Graph.linear g ~name:"fc" ~out_features:1000 x in
  ignore (Graph.output g ~name:"logits" x);
  g
