module Shape = Ascend_tensor.Shape

let build ?(batch = 1) ?(points = 1024) ?(classes = 40)
    ?(dtype = Ascend_arch.Precision.Fp16) () =
  if points <= 0 || classes <= 0 then invalid_arg "Pointnet.build: bad sizes";
  let g = Graph.create ~name:"pointnet" ~dtype in
  (* a point cloud as an Nx1 feature map with 3 input channels (x,y,z) *)
  let x =
    Graph.input g ~name:"points" (Shape.nchw ~n:batch ~c:3 ~h:points ~w:1)
  in
  let shared_mlp tag cout x =
    let c = Graph.conv2d g ~name:(tag ^ ".conv") ~cout ~k:1 x in
    let b = Graph.batch_norm g ~name:(tag ^ ".bn") c in
    Graph.relu g ~name:(tag ^ ".relu") b
  in
  let x = shared_mlp "mlp1" 64 x in
  let x = shared_mlp "mlp2" 64 x in
  let x = shared_mlp "mlp3" 128 x in
  let x = shared_mlp "mlp4" 1024 x in
  (* symmetric aggregation over points *)
  let x = Graph.global_avg_pool g ~name:"aggregate" x in
  let x = Graph.linear g ~name:"fc1" ~out_features:512 x in
  let x = Graph.relu g ~name:"fc1.relu" x in
  let x = Graph.linear g ~name:"fc2" ~out_features:256 x in
  let x = Graph.relu g ~name:"fc2.relu" x in
  let x = Graph.linear g ~name:"head" ~out_features:classes x in
  let x = Graph.softmax g ~name:"prob" x in
  ignore (Graph.output g ~name:"class" x);
  g
