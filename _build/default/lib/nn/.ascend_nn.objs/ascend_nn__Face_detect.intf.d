lib/nn/face_detect.mli: Graph
