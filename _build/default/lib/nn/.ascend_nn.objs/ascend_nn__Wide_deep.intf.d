lib/nn/wide_deep.mli: Ascend_arch Graph
