lib/nn/training.mli: Graph Workload
