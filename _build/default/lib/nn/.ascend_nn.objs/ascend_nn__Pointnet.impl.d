lib/nn/pointnet.ml: Ascend_arch Ascend_tensor Graph
