lib/nn/mobilenet.mli: Ascend_arch Graph
