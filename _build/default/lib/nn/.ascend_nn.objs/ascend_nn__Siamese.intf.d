lib/nn/siamese.mli: Ascend_arch Graph
