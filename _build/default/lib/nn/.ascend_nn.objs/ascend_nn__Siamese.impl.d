lib/nn/siamese.ml: Ascend_arch Ascend_tensor Graph List
