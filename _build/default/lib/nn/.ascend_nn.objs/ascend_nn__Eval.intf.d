lib/nn/eval.mli: Ascend_tensor Graph
