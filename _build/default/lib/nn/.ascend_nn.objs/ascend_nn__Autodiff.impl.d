lib/nn/autodiff.ml: Array Ascend_arch Ascend_tensor Eval Float Graph Hashtbl List Op
