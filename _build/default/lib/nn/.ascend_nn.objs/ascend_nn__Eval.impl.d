lib/nn/eval.ml: Array Ascend_tensor Ascend_util Float Graph Hashtbl List Op Printf
