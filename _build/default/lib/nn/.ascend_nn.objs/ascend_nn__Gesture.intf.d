lib/nn/gesture.mli: Graph
