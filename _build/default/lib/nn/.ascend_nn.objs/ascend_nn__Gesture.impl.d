lib/nn/gesture.ml: Ascend_arch Ascend_tensor Graph
