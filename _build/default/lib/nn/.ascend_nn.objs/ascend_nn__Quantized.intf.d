lib/nn/quantized.mli: Ascend_arch Ascend_tensor Eval Graph
