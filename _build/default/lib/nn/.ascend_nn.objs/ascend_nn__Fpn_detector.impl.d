lib/nn/fpn_detector.ml: Ascend_arch Ascend_tensor Graph List
