lib/nn/graph.ml: Ascend_arch Ascend_tensor Format List Op Printf String
