lib/nn/face_detect.ml: Ascend_arch Ascend_tensor Graph Op
