lib/nn/vgg.mli: Ascend_arch Graph
