lib/nn/autodiff.mli: Ascend_tensor Eval Graph
