lib/nn/pointnet.mli: Ascend_arch Graph
