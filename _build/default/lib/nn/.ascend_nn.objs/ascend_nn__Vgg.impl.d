lib/nn/vgg.ml: Ascend_arch Ascend_tensor Graph Printf
