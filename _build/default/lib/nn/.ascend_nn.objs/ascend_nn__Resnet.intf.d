lib/nn/resnet.mli: Ascend_arch Graph
