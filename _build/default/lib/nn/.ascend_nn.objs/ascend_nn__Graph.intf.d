lib/nn/graph.mli: Ascend_arch Ascend_tensor Format Op
