lib/nn/bert.ml: Ascend_arch Ascend_tensor Graph Op Printf
