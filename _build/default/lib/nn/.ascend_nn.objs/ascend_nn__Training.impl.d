lib/nn/training.ml: Ascend_tensor Graph List Op Workload
