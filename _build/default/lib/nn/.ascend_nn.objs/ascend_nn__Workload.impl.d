lib/nn/workload.ml: Ascend_arch Ascend_tensor Ascend_util Format Graph List Op
