lib/nn/bert.mli: Ascend_arch Graph
