lib/nn/fpn_detector.mli: Ascend_arch Graph
