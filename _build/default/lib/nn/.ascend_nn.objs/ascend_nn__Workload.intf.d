lib/nn/workload.mli: Format Graph
