lib/nn/resnet.ml: Ascend_arch Ascend_tensor Graph Printf
