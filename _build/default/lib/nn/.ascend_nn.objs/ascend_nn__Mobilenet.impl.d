lib/nn/mobilenet.ml: Ascend_arch Ascend_tensor Graph List Printf
