lib/nn/wide_deep.ml: Ascend_arch Ascend_tensor Graph List Op Printf
