lib/nn/op.ml: Ascend_tensor Format List Printf String
