lib/nn/quantized.ml: Ascend_arch Ascend_tensor Eval Float Graph List
