lib/nn/op.mli: Ascend_tensor Format
