(** "Swing Face Detection" (paper Table 1: the Ascend-Tiny always-on
    workload next to gesture inference): a representative int8 anchor-
    free face detector over a 64x64 grayscale frame producing a face
    score/box map — topology is not published, so this is a small
    fully-convolutional stand-in sized for the Tiny core's buffers. *)

val build : ?batch:int -> unit -> Graph.t
