(** BERT encoder stacks (the paper's Table 7 / Figures 4, 5, 9 workload).

    Attention is expressed with explicit batched Matmul nodes so the
    profiler sees the b*heads GEMMs of s x d x s; [Reshape] nodes in this
    IR are element-order reinterpretations (head split/merge), which is
    exact for workload purposes. *)

type config = {
  layers : int;
  hidden : int;
  heads : int;
  intermediate : int;
  vocab_size : int;
  max_position : int;
}

val base_config : config
(** 12 layers, hidden 768, 12 heads. *)

val large_config : config
(** 24 layers, hidden 1024, 16 heads — "BertLarge" of Table 7. *)

val build :
  ?batch:int -> ?seq_len:int -> ?dtype:Ascend_arch.Precision.t ->
  config -> Graph.t
(** Default batch 1, seq_len 128, fp16. *)

val large :
  ?batch:int -> ?seq_len:int -> ?dtype:Ascend_arch.Precision.t -> unit ->
  Graph.t

val base :
  ?batch:int -> ?seq_len:int -> ?dtype:Ascend_arch.Precision.t -> unit ->
  Graph.t
