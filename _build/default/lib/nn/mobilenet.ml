module Shape = Ascend_tensor.Shape

let round_channels ~width_mult c =
  (* round to a multiple of 8, never dropping more than 10% *)
  let v = float_of_int c *. width_mult in
  let rounded = max 8 (int_of_float ((v +. 4.) /. 8.) * 8) in
  if float_of_int rounded < 0.9 *. v then rounded + 8 else rounded

let conv_bn g ?stride ?padding ?groups ~cout ~k ~tag ~act x =
  let c = Graph.conv2d g ~name:(tag ^ ".conv") ?stride ?padding ?groups ~cout ~k x in
  let b = Graph.batch_norm g ~name:(tag ^ ".bn") c in
  if act then Graph.relu6 g ~name:(tag ^ ".relu6") b else b

let inverted_residual g ~tag ~cin ~cout ~stride ~expand x =
  let cmid = cin * expand in
  let h =
    if expand = 1 then x
    else conv_bn g ~cout:cmid ~k:1 ~tag:(tag ^ ".expand") ~act:true x
  in
  let h =
    conv_bn g ~stride ~padding:1 ~groups:cmid ~cout:cmid ~k:3
      ~tag:(tag ^ ".dw") ~act:true h
  in
  let h = conv_bn g ~cout ~k:1 ~tag:(tag ^ ".project") ~act:false h in
  if stride = 1 && cin = cout then Graph.add g ~name:(tag ^ ".add") h x else h

(* (expand, cout, repeats, stride) per the MobileNetV2 paper, Table 2 *)
let blocks_spec =
  [ (1, 16, 1, 1); (6, 24, 2, 2); (6, 32, 3, 2); (6, 64, 4, 2);
    (6, 96, 3, 1); (6, 160, 3, 2); (6, 320, 1, 1) ]

let v2 ?(batch = 1) ?(width_mult = 1.0) ?(dtype = Ascend_arch.Precision.Fp16) () =
  let g = Graph.create ~name:"mobilenet_v2" ~dtype in
  let rc = round_channels ~width_mult in
  let x = Graph.input g ~name:"image" (Shape.nchw ~n:batch ~c:3 ~h:224 ~w:224) in
  let c_stem = rc 32 in
  let x = conv_bn g ~stride:2 ~padding:1 ~cout:c_stem ~k:3 ~tag:"stem" ~act:true x in
  let cin = ref c_stem in
  let x = ref x in
  List.iteri
    (fun stage_i (expand, cout, repeats, stride) ->
      let cout = rc cout in
      for rep = 0 to repeats - 1 do
        let tag = Printf.sprintf "block%d.%d" stage_i rep in
        let s = if rep = 0 then stride else 1 in
        x := inverted_residual g ~tag ~cin:!cin ~cout ~stride:s ~expand !x;
        cin := cout
      done)
    blocks_spec;
  let c_head = max 1280 (rc 1280) in
  let x = conv_bn g ~cout:c_head ~k:1 ~tag:"head" ~act:true !x in
  let x = Graph.global_avg_pool g ~name:"gap" x in
  let x = Graph.linear g ~name:"classifier" ~out_features:1000 x in
  let x = Graph.softmax g ~name:"prob" x in
  ignore (Graph.output g ~name:"logits" x);
  g
