(** VGG-16 (the Ascend-Mini typical workload of Table 1): a deep stack of
    3x3 convolutions with large FC head — heavily cube-biased. *)

val v16 : ?batch:int -> ?dtype:Ascend_arch.Precision.t -> unit -> Graph.t
