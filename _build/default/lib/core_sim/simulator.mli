(** Event-driven execution of a {!Ascend_isa.Program.t} on one core.

    Each pipe runs its instruction stream in order; pipes advance
    concurrently; [Set_flag]/[Wait_flag] pairs impose the cross-pipe
    dependencies of paper Figure 3 and [Barrier] drains every pipe.  The
    PSQ dispatches one instruction per cycle, so instruction [i] cannot
    start before cycle [i].

    The simulator detects deadlocks (a wait whose set can never execute)
    and reports them as [Error] rather than hanging. *)

type pipe_stats = { busy_cycles : int; instruction_count : int }

type buffer_traffic = { read_bytes : int; written_bytes : int }

type trace_entry = {
  index : int;             (** program order *)
  pipe : Ascend_isa.Pipe.t;
  start_cycle : int;
  end_cycle : int;
  instr : Ascend_isa.Instruction.t;
}

type report = {
  total_cycles : int;
  pipes : pipe_stats array;          (** indexed by [Pipe.index] *)
  traffic : buffer_traffic array;    (** indexed by [Buffer_id.index] *)
  energy_j : float;
  cube_macs_executed : int;
  trace : trace_entry list;          (** empty unless [~trace:true] *)
}

val run :
  ?trace:bool -> ?validate:bool -> Ascend_arch.Config.t ->
  Ascend_isa.Program.t -> (report, string) result
(** [validate] (default true) runs {!Ascend_isa.Program.validate} first. *)

val pipe_stats : report -> Ascend_isa.Pipe.t -> pipe_stats
val traffic : report -> Ascend_isa.Buffer_id.t -> buffer_traffic

val utilization : report -> Ascend_isa.Pipe.t -> float
(** busy cycles / total cycles. *)

val seconds : Ascend_arch.Config.t -> report -> float

val average_power_w : Ascend_arch.Config.t -> report -> float
(** energy / time, plus the configuration's leakage floor. *)

val l1_read_bits_per_cycle : report -> float
(** L1 bytes read (into L0) * 8 / total cycles — Figure 9's y-axis. *)

val l1_write_bits_per_cycle : report -> float

val pp_report : Format.formatter -> report -> unit
