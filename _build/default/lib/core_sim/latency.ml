module Config = Ascend_arch.Config
module Buffer_id = Ascend_isa.Buffer_id
module Instruction = Ascend_isa.Instruction

let cube_issue_overhead = 2
let vector_issue_overhead = 8
let mte_issue_overhead = 4

(* a Tiny-class core without an LLC talks to a narrow DDR port *)
let no_llc_external_bytes_per_cycle = 16.

let cube_matmul config ~m ~k ~n ~precision =
  cube_issue_overhead + Config.cube_tile_cycles config ~precision ~m ~k ~n ()

let vector_op (config : Config.t) ~bytes =
  vector_issue_overhead
  + Ascend_util.Stats.divide_round_up bytes config.vector_width_bytes

let port_bytes_per_cycle (config : Config.t) ~src ~dst =
  let external_bpc =
    let bpc = Config.llc_bytes_per_cycle config in
    if bpc > 0. then bpc else no_llc_external_bytes_per_cycle
  in
  match (src, dst) with
  | Buffer_id.External, Buffer_id.L1 -> external_bpc
  | Buffer_id.External, Buffer_id.Ub -> external_bpc
  | Buffer_id.Ub, Buffer_id.External -> external_bpc
  | Buffer_id.L1, Buffer_id.L0a -> float_of_int config.bandwidth.l1_to_l0a
  | Buffer_id.L1, Buffer_id.L0b -> float_of_int config.bandwidth.l1_to_l0b
  | Buffer_id.L1, Buffer_id.Ub -> float_of_int config.bandwidth.ub_port
  | Buffer_id.L0c, Buffer_id.Ub -> float_of_int config.bandwidth.ub_port
  | Buffer_id.Ub, Buffer_id.L1 -> float_of_int config.bandwidth.ub_port
  | _, _ ->
    invalid_arg
      (Printf.sprintf "Latency.port_bytes_per_cycle: illegal move %s -> %s"
         (Buffer_id.name src) (Buffer_id.name dst))

let mte_move config ~src ~dst ~bytes =
  let bpc = port_bytes_per_cycle config ~src ~dst in
  mte_issue_overhead + int_of_float (ceil (float_of_int bytes /. bpc))

let instruction config = function
  | Instruction.Cube_matmul { m; k; n; precision; _ } ->
    cube_matmul config ~m ~k ~n ~precision
  | Instruction.Vector_op { bytes; _ } -> vector_op config ~bytes
  | Instruction.Mte_move { src; dst; bytes; _ } as instr ->
    (* the port is busy for the larger side of the transfer (img2col can
       read more than it writes when subsampling, and vice versa) *)
    let bytes = max bytes (Instruction.source_bytes instr) in
    mte_move config ~src ~dst ~bytes
  | Instruction.Scalar_op { cycles } -> max 1 cycles
  | Instruction.Set_flag _ | Instruction.Wait_flag _ -> 1
  | Instruction.Barrier -> invalid_arg "Latency.instruction: barrier"
