lib/core_sim/latency.mli: Ascend_arch Ascend_isa
