lib/core_sim/simulator.ml: Array Ascend_arch Ascend_isa Ascend_util Format Hashtbl Latency List Printf Queue String
