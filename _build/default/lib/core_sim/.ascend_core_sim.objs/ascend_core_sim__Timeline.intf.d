lib/core_sim/timeline.mli: Simulator
