lib/core_sim/latency.ml: Ascend_arch Ascend_isa Ascend_util Printf
