lib/core_sim/simulator.mli: Ascend_arch Ascend_isa Format
