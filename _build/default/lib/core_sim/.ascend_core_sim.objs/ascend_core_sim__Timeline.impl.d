lib/core_sim/timeline.ml: Array Ascend_isa Ascend_util Buffer List Printf Simulator String
