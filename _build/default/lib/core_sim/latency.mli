(** Instruction timing model of one Ascend core.

    All latencies are in core clock cycles of the configured frequency.
    Fixed issue overheads model instruction decode and port turnaround;
    transfer times are [bytes / port-width] with the port selected by the
    (src, dst) buffer pair per the Table 5 bus widths. *)

val cube_issue_overhead : int
val vector_issue_overhead : int
val mte_issue_overhead : int

val cube_matmul :
  Ascend_arch.Config.t -> m:int -> k:int -> n:int ->
  precision:Ascend_arch.Precision.t -> int

val vector_op : Ascend_arch.Config.t -> bytes:int -> int

val mte_move :
  Ascend_arch.Config.t -> src:Ascend_isa.Buffer_id.t ->
  dst:Ascend_isa.Buffer_id.t -> bytes:int -> int
(** Raises [Invalid_argument] on an illegal pair or when the pair needs
    the LLC but the core has none (Tiny external moves fall back to a
    DDR-port constant of 16 B/cycle). *)

val port_bytes_per_cycle :
  Ascend_arch.Config.t -> src:Ascend_isa.Buffer_id.t ->
  dst:Ascend_isa.Buffer_id.t -> float

val instruction : Ascend_arch.Config.t -> Ascend_isa.Instruction.t -> int
(** Latency of any non-barrier instruction (barrier raises). *)
