(** The multi-level scheduling hierarchy of paper §5.2 / Figure 17:
    multiple apps run concurrently on one SoC; the graph compiler turns
    each app into streams of in-order tasks; each task splits into blocks
    that execute in parallel on different Ascend cores.

    This is a deterministic list scheduler over simulated time: streams
    progress independently; a task's blocks are placed on the
    earliest-free cores (never before the stream is ready); the task
    completes when its last block does. *)

type task = {
  task_name : string;
  blocks : int;              (** parallel blocks (programmer-specified) *)
  cycles_per_block : int;
}

type stream = { stream_name : string; tasks : task list }

type app = {
  app_name : string;
  streams : stream list;
  priority : int;
      (** higher runs first when streams compete for a core (the QoS
          priority of paper §3.3); equal priorities share by readiness *)
}

val app : ?priority:int -> name:string -> stream list -> app
(** Default priority 0. *)

type placement = {
  app : string;
  stream : string;
  task : string;
  block : int;
  core : int;
  start_cycle : int;
  end_cycle : int;
}

type schedule = {
  placements : placement list;    (** in placement order *)
  makespan_cycles : int;
  core_busy_cycles : int array;
  tasks_completed : int;
}

val run : cores:int -> app list -> schedule
(** Raises [Invalid_argument] on non-positive cores / blocks / cycles. *)

val utilization : schedule -> float
(** Mean busy fraction across cores over the makespan. *)

val task_of_layer :
  Ascend_compiler.Engine.layer_result -> blocks:int -> task
(** Split a simulated layer into [blocks] equal blocks (block-level
    parallelism across cores). *)

val stream_of_network :
  Ascend_compiler.Engine.network_result -> blocks_per_task:int -> stream

val pp : Format.formatter -> schedule -> unit
