lib/runtime/scheduler.ml: Array Ascend_compiler Ascend_core_sim Ascend_util Format List Printf
