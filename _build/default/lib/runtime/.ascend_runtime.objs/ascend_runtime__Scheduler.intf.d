lib/runtime/scheduler.mli: Ascend_compiler Format
