module Config = Ascend_arch.Config
module Precision = Ascend_arch.Precision
module I = Ascend_isa.Instruction
module Buffer_id = Ascend_isa.Buffer_id
module Pipe = Ascend_isa.Pipe
module Program = Ascend_isa.Program

type sync_mode = Flags | Coarse_barriers

type options = {
  weight_sparsity : float option;
  double_buffer : bool;
  naive_tiling : bool;
  sync_mode : sync_mode;
}

let default_options =
  { weight_sparsity = None; double_buffer = true; naive_tiling = false;
    sync_mode = Flags }

let select_tiling ~options config ~precision ~expansion ~m ~k ~n =
  if options.naive_tiling then Tiling.naive config ~precision ~m ~k ~n ()
  else Tiling.choose config ~precision ~img2col_expansion:expansion ~m ~k ~n ()

(* flag id assignments for the GEMM loop *)
let f_a_panel = 0 (* MTE2 -> MTE1: A panel staged in L1 *)
let f_b_data = 1 (* MTE2 -> MTE1: B data staged in L1 *)
let f_l0_data = 2 (* MTE1 -> Cube: tile pair in L0A/L0B *)
let f_l0_free = 3 (* Cube -> MTE1: L0 slot consumed *)
let f_drain = 4 (* Cube -> Vector: L0C tile complete *)
let f_l0c_free = 5 (* Vector -> Cube: L0C slot drained *)
let f_store = 6 (* Vector -> MTE3: UB tile ready *)
let f_ub_free = 7 (* MTE3 -> Vector: UB slot stored *)

let gemm_tile_flags =
  (f_a_panel, f_b_data, f_l0_data, f_l0_free, f_drain, f_l0c_free, f_store,
   f_ub_free)

type builder = {
  mutable rev : I.t list;
  mutable peaks : (Buffer_id.t * int) list;
  mode : sync_mode;
}

let builder ?(mode = Flags) () = { rev = []; peaks = []; mode }
let emit b i = b.rev <- i :: b.rev

(* under coarse-barrier synchronisation (the ablation of Figure 3's
   decoupled flags), every dependency point becomes a full-pipe barrier:
   sets vanish and waits drain the whole core *)
let barrier b =
  match b.rev with
  | I.Barrier :: _ -> () (* collapse adjacent barriers *)
  | _ -> emit b I.Barrier

let peak b buf bytes =
  let cur =
    match List.assoc_opt buf b.peaks with Some v -> v | None -> 0
  in
  b.peaks <- (buf, max cur bytes) :: List.remove_assoc buf b.peaks

let set b ~from_pipe ~to_pipe flag =
  match b.mode with
  | Flags -> emit b (I.Set_flag { from_pipe; to_pipe; flag })
  | Coarse_barriers -> ()

let wait b ~from_pipe ~to_pipe flag =
  match b.mode with
  | Flags -> emit b (I.Wait_flag { from_pipe; to_pipe; flag })
  | Coarse_barriers -> barrier b

let bytes_of ~elems ~size = int_of_float (ceil (float_of_int elems *. size))

let div_up = Ascend_util.Stats.divide_round_up

(* ------------------------------------------------------------------ *)
(* Cube-anchored group: tiled GEMM nest.                               *)

let emit_gemm b (config : Config.t) ~options ~precision ~expansion
    ~post_bytes_per_tile (g : Ascend_nn.Workload.gemm) =
  let src = Precision.size_bytes precision in
  let acc = Precision.size_bytes (Precision.accumulator precision) in
  let tiling =
    select_tiling ~options config ~precision ~expansion ~m:g.m ~k:g.k ~n:g.n
  in
  (* clamp mt so a compact A panel (mt x K) double-buffers in half of L1 *)
  let dims = Config.cube_dims_at config ~precision in
  let panel_budget = config.buffers.l1_bytes / 4 in
  let mt =
    let per_row = float_of_int g.k *. src /. expansion in
    let cap = int_of_float (float_of_int panel_budget /. Float.max 1e-9 per_row) in
    let cap = max dims.m (cap / dims.m * dims.m) in
    min tiling.mt cap
  in
  let kt = tiling.kt and nt = tiling.nt in
  let m_tiles = div_up g.m mt in
  let k_tiles = div_up g.k kt in
  let n_tiles = div_up g.n nt in
  let b_total = bytes_of ~elems:(g.k * g.n) ~size:src in
  let b_resident = b_total <= config.buffers.l1_bytes / 4 in
  let sparsity = options.weight_sparsity in
  let b_transform =
    match sparsity with
    | Some ratio -> I.Decompress { ratio }
    | None -> I.Plain
  in
  let b_ext_bytes bytes =
    match sparsity with
    | Some ratio -> int_of_float (float_of_int bytes *. ratio)
    | None -> bytes
  in
  (* static buffer footprints *)
  let a_panel_bytes mt_a =
    bytes_of ~elems:(mt_a * g.k) ~size:src
    |> fun x -> int_of_float (float_of_int x /. expansion)
  in
  (* an A panel (mt x K, compact) stages in L1 when it fits the budget;
     with a huge K (e.g. dW GEMMs of the backward pass) the panel is
     streamed per k-tile instead, like a non-resident B *)
  let a_resident = a_panel_bytes mt <= panel_budget in
  let a_chunk_bytes mt_a kt_a =
    int_of_float (float_of_int (bytes_of ~elems:(mt_a * kt_a) ~size:src) /. expansion)
  in
  peak b Buffer_id.L0a (2 * bytes_of ~elems:(mt * kt) ~size:src);
  peak b Buffer_id.L0b (2 * bytes_of ~elems:(kt * nt) ~size:src);
  peak b Buffer_id.L0c (2 * bytes_of ~elems:(mt * nt) ~size:acc);
  peak b Buffer_id.Ub (2 * bytes_of ~elems:(mt * nt) ~size:acc);
  peak b Buffer_id.L1
    ((if a_resident then 2 * a_panel_bytes mt else 2 * a_chunk_bytes mt kt)
    + (if b_resident then b_total else 2 * bytes_of ~elems:(kt * nt) ~size:src));
  (* double buffering keeps two tiles in flight; disabling it (the
     ablation knob) serialises on a single slot *)
  let depth = if options.double_buffer then 2 else 1 in
  for _instance = 1 to g.count do
    if b_resident then begin
      emit b
        (I.mte_move ~src:Buffer_id.External ~dst:Buffer_id.L1
           ~bytes:(b_ext_bytes b_total) ());
      set b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 f_b_data
    end;
    let waited_b = ref false in
    let tile_index = ref 0 (* k-level tile pairs, for L0A/L0B recycling *) in
    let out_tile_index = ref 0 (* (m,n) output tiles, for L0C/UB recycling *) in
    for mi = 0 to m_tiles - 1 do
      let mt_a = min mt (g.m - (mi * mt)) in
      (* stage the A panel for this m-tile when it fits *)
      if a_resident then begin
        emit b
          (I.mte_move ~src:Buffer_id.External ~dst:Buffer_id.L1
             ~bytes:(a_panel_bytes mt_a) ());
        set b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 f_a_panel
      end;
      let waited_a = ref false in
      for ni = 0 to n_tiles - 1 do
        let nt_a = min nt (g.n - (ni * nt)) in
        for ki = 0 to k_tiles - 1 do
          let kt_a = min kt (g.k - (ki * kt)) in
          (* L0 slot backpressure *)
          if !tile_index >= depth then
            wait b ~from_pipe:Pipe.Cube ~to_pipe:Pipe.Mte1 f_l0_free;
          if a_resident then begin
            if not !waited_a then begin
              wait b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 f_a_panel;
              waited_a := true
            end
          end
          else begin
            emit b
              (I.mte_move ~src:Buffer_id.External ~dst:Buffer_id.L1
                 ~bytes:(a_chunk_bytes mt_a kt_a) ());
            set b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 f_a_panel;
            wait b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 f_a_panel
          end;
          emit b
            (I.mte_move ~src:Buffer_id.L1 ~dst:Buffer_id.L0a
               ~transform:(I.Img2col { expansion })
               ~bytes:(bytes_of ~elems:(mt_a * kt_a) ~size:src)
               ());
          if b_resident then begin
            if not !waited_b then begin
              wait b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 f_b_data;
              waited_b := true
            end
          end
          else begin
            emit b
              (I.mte_move ~src:Buffer_id.External ~dst:Buffer_id.L1
                 ~bytes:(b_ext_bytes (bytes_of ~elems:(kt_a * nt_a) ~size:src))
                 ());
            set b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 f_b_data;
            wait b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Mte1 f_b_data
          end;
          emit b
            (I.mte_move ~src:Buffer_id.L1 ~dst:Buffer_id.L0b
               ~transform:b_transform
               ~bytes:(bytes_of ~elems:(kt_a * nt_a) ~size:src)
               ());
          set b ~from_pipe:Pipe.Mte1 ~to_pipe:Pipe.Cube f_l0_data;
          (* cube side *)
          wait b ~from_pipe:Pipe.Mte1 ~to_pipe:Pipe.Cube f_l0_data;
          if ki = 0 && !out_tile_index >= depth then
            wait b ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Cube f_l0c_free;
          emit b
            (I.Cube_matmul
               { m = mt_a; k = kt_a; n = nt_a; precision; accumulate = ki > 0 });
          set b ~from_pipe:Pipe.Cube ~to_pipe:Pipe.Mte1 f_l0_free;
          incr tile_index
        done;
        (* drain the finished (mi, ni) tile through the vector unit *)
        set b ~from_pipe:Pipe.Cube ~to_pipe:Pipe.Vector f_drain;
        wait b ~from_pipe:Pipe.Cube ~to_pipe:Pipe.Vector f_drain;
        if !out_tile_index >= depth then
          wait b ~from_pipe:Pipe.Mte3 ~to_pipe:Pipe.Vector f_ub_free;
        let out_acc_bytes = bytes_of ~elems:(mt_a * nt_a) ~size:acc in
        emit b
          (I.mte_move ~src:Buffer_id.L0c ~dst:Buffer_id.Ub ~bytes:out_acc_bytes
             ());
        if post_bytes_per_tile > 0 then
          emit b
            (I.Vector_op
               {
                 op_name = "post";
                 bytes = post_bytes_per_tile;
                 reads_ub = true;
                 writes_ub = true;
               });
        set b ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Cube f_l0c_free;
        set b ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte3 f_store;
        (* store side, downcast back to source precision *)
        wait b ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte3 f_store;
        emit b
          (I.mte_move ~src:Buffer_id.Ub ~dst:Buffer_id.External
             ~bytes:(bytes_of ~elems:(mt_a * nt_a) ~size:src)
             ());
        set b ~from_pipe:Pipe.Mte3 ~to_pipe:Pipe.Vector f_ub_free;
        incr out_tile_index
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* Vector-only group: streamed load -> vector -> store pipeline.       *)

let f_in_data = 0 (* MTE2 -> Vector *)
let f_in_free = 1 (* Vector -> MTE2 *)
let f_out_data = 2 (* Vector -> MTE3 *)
let f_out_free = 3 (* MTE3 -> Vector *)

let emit_vector_stream b (config : Config.t) ~options ~precision ~vector_bytes
    ~input_bytes ~output_bytes =
  let chunk = max 1 (config.buffers.ub_bytes / 4) in
  let n_chunks = max 1 (div_up (max vector_bytes 1) chunk) in
  let share total i =
    (* split [total] across chunks, remainder on the first *)
    let base = total / n_chunks in
    if i = 0 then total - (base * (n_chunks - 1)) else base
  in
  peak b Buffer_id.Ub (min config.buffers.ub_bytes (4 * chunk));
  ignore precision;
  let depth = if options.double_buffer then 2 else 1 in
  for i = 0 to n_chunks - 1 do
    let in_b = share input_bytes i in
    let work_b = share vector_bytes i in
    let out_b = share output_bytes i in
    if i >= depth then
      wait b ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte2 f_in_free;
    if in_b > 0 then
      emit b
        (I.mte_move ~src:Buffer_id.External ~dst:Buffer_id.Ub ~bytes:in_b ());
    set b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Vector f_in_data;
    wait b ~from_pipe:Pipe.Mte2 ~to_pipe:Pipe.Vector f_in_data;
    if i >= depth then
      wait b ~from_pipe:Pipe.Mte3 ~to_pipe:Pipe.Vector f_out_free;
    if work_b > 0 then
      emit b
        (I.Vector_op
           { op_name = "vec"; bytes = work_b; reads_ub = true; writes_ub = true });
    set b ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte2 f_in_free;
    set b ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte3 f_out_data;
    wait b ~from_pipe:Pipe.Vector ~to_pipe:Pipe.Mte3 f_out_data;
    if out_b > 0 then
      emit b
        (I.mte_move ~src:Buffer_id.Ub ~dst:Buffer_id.External ~bytes:out_b ());
    set b ~from_pipe:Pipe.Mte3 ~to_pipe:Pipe.Vector f_out_free
  done

(* ------------------------------------------------------------------ *)

let group_program ?(options = default_options) (config : Config.t)
    (group : Fusion.t) =
  if not (Config.supports config group.precision) then
    invalid_arg
      (Printf.sprintf "Codegen.group_program: %s unsupported on %s"
         (Precision.name group.precision)
         config.name);
  let b = builder ~mode:options.sync_mode () in
  (* scalar control prologue *)
  emit b (I.Scalar_op { cycles = 4 });
  let src = Precision.size_bytes group.precision in
  (match group.kind with
  | Fusion.Cube_anchored ->
    let total_out_tiles =
      List.fold_left
        (fun acc (g : Ascend_nn.Workload.gemm) ->
          let tiling =
            select_tiling ~options config ~precision:group.precision
              ~expansion:group.img2col_expansion ~m:g.m ~k:g.k ~n:g.n
          in
          acc + (g.count * tiling.m_tiles * tiling.n_tiles))
        0 group.gemms
    in
    let total_post_bytes =
      int_of_float (ceil (group.vector_elems *. src))
    in
    let post_bytes_per_tile =
      if total_out_tiles = 0 then 0 else total_post_bytes / total_out_tiles
    in
    List.iter
      (fun g ->
        emit_gemm b config ~options ~precision:group.precision
          ~expansion:group.img2col_expansion ~post_bytes_per_tile g)
      group.gemms
  | Fusion.Vector_only ->
    emit_vector_stream b config ~options ~precision:group.precision
      ~vector_bytes:(int_of_float (ceil (group.vector_elems *. src)))
      ~input_bytes:group.input_bytes ~output_bytes:group.output_bytes);
  Program.make ~name:group.tag ~buffer_peak:b.peaks (List.rev b.rev)

let graph_programs ?options config graph =
  let groups = Fusion.partition graph in
  List.map (fun g -> (g, group_program ?options config g)) groups
