(** Auto-tiling: choose GEMM tile sizes for a core configuration.

    The paper's "Auto Tiling" searches the legitimate mapping space with
    reinforcement learning (§5.1); we search the same space exhaustively
    with an analytical cost model (DESIGN.md substitution).  The space is
    legal tile triples (mt, kt, nt) — multiples of the effective cube
    dimensions, double-buffered in L0A/L0B/L0C — scored by the
    bottleneck-pipe cycle estimate. *)

type t = {
  mt : int;
  kt : int;
  nt : int;
  m_tiles : int;
  k_tiles : int;
  n_tiles : int;
  estimated_cycles : int;
}

val legal :
  Ascend_arch.Config.t -> precision:Ascend_arch.Precision.t ->
  mt:int -> kt:int -> nt:int -> bool
(** Double-buffered tiles fit in L0A/L0B/L0C. *)

val choose :
  Ascend_arch.Config.t -> precision:Ascend_arch.Precision.t ->
  ?img2col_expansion:float -> m:int -> k:int -> n:int -> unit -> t
(** Best legal tiling for an m x k x n GEMM.  Raises [Invalid_argument]
    when no tile fits (cannot happen for the shipped configurations since
    a single cube tile always fits). *)

val cost :
  Ascend_arch.Config.t -> precision:Ascend_arch.Precision.t ->
  img2col_expansion:float -> m:int -> k:int -> n:int ->
  mt:int -> kt:int -> nt:int -> int
(** The analytical bottleneck estimate used by the search: max of cube,
    MTE1, MTE2 pipe totals plus per-instruction overheads. *)

val naive :
  Ascend_arch.Config.t -> precision:Ascend_arch.Precision.t ->
  m:int -> k:int -> n:int -> unit -> t
(** The no-search baseline for the auto-tiling ablation: single-cube-
    instruction tiles (one (Cm,Ck,Cn) tile per instruction) — always
    legal, maximally fine-grained, maximal per-instruction overhead. *)

val pp : Format.formatter -> t -> unit
