module Graph = Ascend_nn.Graph

type task = {
  id : int;
  tag : string;
  cycles : int;
  stream : int;
  deps : int list;
}

type plan = { stream_count : int; tasks : task list }

let plan config graph =
  let groups = Fusion.partition graph in
  (* map node id -> group index *)
  let node_group = Hashtbl.create 64 in
  List.iteri
    (fun gi (g : Fusion.t) ->
      List.iter
        (fun (n : Graph.node) -> Hashtbl.replace node_group n.id gi)
        g.nodes)
    groups;
  (* group-level dependencies; bookkeeping nodes (Input/Output/Reshape)
     belong to no group, so resolve through them transitively *)
  let rec resolve_groups input =
    match Hashtbl.find_opt node_group input with
    | Some gj -> [ gj ]
    | None ->
      List.concat_map resolve_groups (Graph.find graph input).Graph.inputs
  in
  let deps_of gi (g : Fusion.t) =
    List.concat_map
      (fun (n : Graph.node) ->
        List.concat_map resolve_groups n.inputs
        |> List.filter (fun gj -> gj <> gi))
      g.nodes
    |> List.sort_uniq compare
  in
  (* simulate each group for its cycle cost *)
  let rec sim acc gi = function
    | [] -> Ok (List.rev acc)
    | g :: rest -> (
      match Engine.run_group config g with
      | Error _ as e -> e
      | Ok r ->
        sim
          ((gi, g, deps_of gi g, r.Engine.report.Ascend_core_sim.Simulator.total_cycles)
           :: acc)
          (gi + 1) rest)
  in
  match sim [] 0 groups with
  | Error e -> Error e
  | Ok rows ->
    (* greedy chain cover: extend the producer's stream when this group is
       the first to consume that stream's tail *)
    let stream_of = Hashtbl.create 16 in
    let stream_tail = Hashtbl.create 16 (* stream -> last group idx *) in
    let next_stream = ref 0 in
    let tasks =
      List.map
        (fun (gi, (g : Fusion.t), deps, cycles) ->
          (* prefer extending the chain of the most recent producer (the
             natural continuation); earlier producers become events *)
          let chosen =
            List.find_map
              (fun dep ->
                match Hashtbl.find_opt stream_of dep with
                | Some s when Hashtbl.find_opt stream_tail s = Some dep ->
                  Some s
                | _ -> None)
              (List.rev deps)
          in
          let stream =
            match chosen with
            | Some s -> s
            | None ->
              let s = !next_stream in
              incr next_stream;
              s
          in
          Hashtbl.replace stream_of gi stream;
          Hashtbl.replace stream_tail stream gi;
          (* cross-stream deps become explicit events *)
          let cross =
            List.filter
              (fun dep -> Hashtbl.find_opt stream_of dep <> Some stream)
              deps
          in
          { id = gi; tag = g.Fusion.tag; cycles; stream; deps = cross })
        rows
    in
    Ok { stream_count = !next_stream; tasks }

let serial_cycles p = List.fold_left (fun acc t -> acc + t.cycles) 0 p.tasks

let validate p =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | [] -> Ok ()
    | t :: rest ->
      if List.exists (fun d -> not (Hashtbl.mem seen d)) t.deps then
        Error (Printf.sprintf "task %s depends on a later task" t.tag)
      else if t.stream < 0 || t.stream >= p.stream_count then
        Error (Printf.sprintf "task %s has stream %d out of range" t.tag t.stream)
      else begin
        Hashtbl.replace seen t.id ();
        go rest
      end
  in
  go p.tasks

let makespan p ~cores =
  if cores <= 0 then invalid_arg "Graph_engine.makespan: non-positive cores";
  let finish = Hashtbl.create 64 in
  let stream_ready = Hashtbl.create 16 in
  let core_free = Array.make cores 0 in
  (* list schedule by readiness, not declaration order: repeatedly pick
     the eligible task with the earliest ready time so an idle stream is
     not starved behind an unrelated one *)
  let pending = ref p.tasks in
  let scheduled = Hashtbl.create 64 in
  let eligible t =
    (match Hashtbl.find_opt stream_ready t.stream with
    | Some _ | None -> true)
    && List.for_all (Hashtbl.mem finish) t.deps
    && (* stream order: the previous task of this stream must be done *)
    not
      (List.exists
         (fun u ->
           u.stream = t.stream && u.id < t.id
           && not (Hashtbl.mem scheduled u.id))
         p.tasks)
  in
  let ready_time t =
    let dep_ready =
      List.fold_left
        (fun acc d ->
          match Hashtbl.find_opt finish d with
          | Some f -> max acc f
          | None -> acc)
        0 t.deps
    in
    let sr =
      match Hashtbl.find_opt stream_ready t.stream with
      | Some v -> v
      | None -> 0
    in
    max dep_ready sr
  in
  while !pending <> [] do
    let best =
      List.fold_left
        (fun acc t ->
          if not (eligible t) then acc
          else
            match acc with
            | None -> Some t
            | Some b ->
              let rt = ready_time t and rb = ready_time b in
              if rt < rb || (rt = rb && t.id < b.id) then Some t else acc)
        None !pending
    in
    match best with
    | None ->
      (* cannot happen on a validated plan; avoid looping forever *)
      invalid_arg "Graph_engine.makespan: no eligible task (cyclic plan?)"
    | Some t ->
      let ready = ready_time t in
      let core = ref 0 in
      for c = 1 to cores - 1 do
        if core_free.(c) < core_free.(!core) then core := c
      done;
      let start = max ready core_free.(!core) in
      let stop = start + t.cycles in
      core_free.(!core) <- stop;
      Hashtbl.replace finish t.id stop;
      Hashtbl.replace stream_ready t.stream stop;
      Hashtbl.replace scheduled t.id ();
      pending := List.filter (fun u -> u.id <> t.id) !pending
  done;
  Hashtbl.fold (fun _ f acc -> max acc f) finish 0

let pp ppf p =
  Format.fprintf ppf "plan: %d streams, %d tasks, %d serial cycles@."
    p.stream_count (List.length p.tasks) (serial_cycles p);
  List.iter
    (fun t ->
      Format.fprintf ppf "  s%d %-28s %8d cyc%s@." t.stream t.tag t.cycles
        (if t.deps = [] then ""
         else
           " <- events from "
           ^ String.concat "," (List.map string_of_int t.deps)))
    p.tasks
