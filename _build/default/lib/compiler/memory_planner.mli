(** Liveness-based activation memory planning for the external (device
    memory / LLC) footprint of a graph: each node's output lives from its
    definition to its last consumer; buffers are packed greedily by
    first-fit offset assignment.  The resulting footprint feeds the LLC
    capacity experiment of paper §4.1. *)

type allocation = {
  node_id : int;
  node_name : string;
  offset : int;
  size_bytes : int;
  first_use : int;   (** defining node id *)
  last_use : int;    (** last consumer id (or itself for outputs) *)
}

type plan = {
  allocations : allocation list;
  peak_bytes : int;     (** activation high-water mark *)
  weight_bytes : int;   (** parameters are resident for the whole run *)
}

val plan : Ascend_nn.Graph.t -> plan

val validate : plan -> (unit, string) result
(** No two live-range-overlapping allocations may overlap in address
    space (the property tests drive random graphs through this). *)

val total_activation_bytes : Ascend_nn.Graph.t -> int
(** Sum of every node's output footprint — what a training pass keeps
    resident for the backward computation (no rematerialisation). *)

val working_set_by_node : Ascend_nn.Graph.t -> (int * int) list
(** Per node: bytes that must be resident while it runs (inputs + output
    + its weights) — the per-layer LLC working set. *)
