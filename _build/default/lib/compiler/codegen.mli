(** Code generation: lower a fused group to an Ascend core program.

    Cube-anchored groups become the canonical tiled GEMM loop nest
    [for m-tile, for n-tile, for k-tile] with:
    - A panels (mt x K, stored compact, expanded by img2col on the MTE1
      path) staged into L1 once per m-tile;
    - B either resident in L1 (when it fits a quarter of L1) or streamed
      as k-tile chunks;
    - double buffering throughout, expressed with the explicit
      [Set_flag]/[Wait_flag] pairs of paper Figure 3: MTE1->Cube data
      flags, Cube->MTE1 free flags, Cube->Vector drain flags,
      Vector->MTE3 store flags and the reverse free flags;
    - the group's vector post-ops (bias/norm/activation) spread across
      output tiles.

    Vector-only groups (depthwise convolutions, standalone
    normalisations) become a streamed [load -> vector -> store] pipeline
    through the unified buffer.

    The generated programs pass {!Ascend_isa.Program.validate} and are
    deadlock-free by construction (tested by property tests). *)

type sync_mode =
  | Flags
      (** the paper's Figure 3: decoupled pipes with explicit
          [Set_flag]/[Wait_flag] pairs *)
  | Coarse_barriers
      (** the ablation: every dependency point becomes a full-core
          barrier — correct but serialising, quantifying what the
          fine-grained flags buy *)

type options = {
  weight_sparsity : float option;
      (** compressed/uncompressed weight ratio in (0,1]; enables the MTE
          decompression path (paper §2.2 / §3.2 structured sparsity) *)
  double_buffer : bool;
      (** default true; false serialises tile j after tile j-1's
          consumption — the ablation knob for the double-buffering
          design choice *)
  naive_tiling : bool;
      (** default false; true bypasses the auto-tiling search and emits
          single-cube-instruction tiles — the auto-tiling ablation *)
  sync_mode : sync_mode;  (** default [Flags] *)
}

val default_options : options

val gemm_tile_flags : int * int * int * int * int * int * int * int
(** The eight flag ids used by the GEMM loop, for tests and disassembly:
    (a_panel, b_data, l0_data, l0_free, drain, l0c_free, store, ub_free). *)

val group_program :
  ?options:options -> Ascend_arch.Config.t -> Fusion.t ->
  Ascend_isa.Program.t
(** Raises [Invalid_argument] if the group's precision is unsupported on
    the configuration. *)

val graph_programs :
  ?options:options -> Ascend_arch.Config.t -> Ascend_nn.Graph.t ->
  (Fusion.t * Ascend_isa.Program.t) list
