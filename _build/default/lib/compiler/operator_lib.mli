(** The Operator Lib of paper §5.1: "Streams/Tasks can be directly called
    from Operator Lib" — a registry of hand-written kernels an expert
    would ship alongside the compiler, each generating a complete core
    program.

    Unlike the generic vector-stream lowering, these kernels respect the
    operator's natural granularity: softmax and layer-norm chunk at row
    boundaries (a row's working set must be UB-resident across its
    passes), transpose runs on the MTE [trans] module, and requantize is
    a fused single-pass conversion. *)

type kernel = {
  kernel_name : string;
  generate : Ascend_arch.Config.t -> Ascend_isa.Program.t;
}

val softmax : rows:int -> cols:int -> ?dtype:Ascend_arch.Precision.t -> unit -> kernel
(** 4 passes per row chunk (row max, subtract+exp, row sum, divide);
    raises [Invalid_argument] at generation time if a single row cannot
    fit a quarter of the unified buffer. *)

val layer_norm : rows:int -> cols:int -> ?dtype:Ascend_arch.Precision.t -> unit -> kernel
(** 5 passes per row chunk. *)

val transpose : rows:int -> cols:int -> ?dtype:Ascend_arch.Precision.t -> unit -> kernel
(** External -> L1 -> (MTE trans) -> L0A is not architecturally available
    for output, so the kernel stages through L1 with the [Transpose]
    transform on the L1->L0A move and drains via UB — exercising the MTE
    trans module of paper §2.2. *)

val requantize :
  elems:int -> from_dtype:Ascend_arch.Precision.t ->
  to_dtype:Ascend_arch.Precision.t -> unit -> kernel
(** The vector unit's precision-conversion duty (paper §2.2:
    "quantization and dequantization operations among int32, fp16 and
    int8"): one fused pass, different input/output byte widths. *)

val registry : unit -> (string * (unit -> kernel)) list
(** Named sample instances of every kernel (for discovery/tests). *)

val simulate :
  Ascend_arch.Config.t -> kernel ->
  (Ascend_core_sim.Simulator.report, string) result
