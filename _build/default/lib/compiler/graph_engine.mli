(** The Graph Engine of paper §5.1/§5.2: compile a model graph into
    "Streams" of in-order "Tasks", with explicit events where one stream
    consumes another stream's product.

    Streams are built by greedy chain cover of the fused-group DAG:
    a group extends its producer's stream when it is that chain's current
    tail, otherwise it opens a new stream (so parallel branches — e.g.
    the two towers of a Siamese tracker, or attention's Q/K/V — become
    genuinely concurrent streams).  {!makespan} list-schedules the plan
    on a multi-core SoC honouring both stream order and cross-stream
    events. *)

type task = {
  id : int;
  tag : string;
  cycles : int;           (** simulated single-core cycles of the group *)
  stream : int;
  deps : int list;        (** task ids this task waits on (cross-stream
                              events; same-stream order is implicit) *)
}

type plan = {
  stream_count : int;
  tasks : task list;      (** in topological order *)
}

val plan :
  Ascend_arch.Config.t -> Ascend_nn.Graph.t -> (plan, string) result
(** Fuse, compile and simulate every group on one core, then decompose
    into streams. *)

val serial_cycles : plan -> int
(** Sum of all task cycles — the one-core lower-level bound. *)

val makespan : plan -> cores:int -> int
(** List schedule on [cores] cores: a task starts when its stream
    predecessor and all [deps] have finished and a core is free.
    Raises [Invalid_argument] on non-positive cores. *)

val validate : plan -> (unit, string) result
(** deps reference earlier tasks only; stream ids are dense; every task
    reachable. *)

val pp : Format.formatter -> plan -> unit
