(** Operator fusion: partition the topologically-ordered graph into the
    execution layers the paper's per-layer profiles (Figures 4-8) are
    drawn over.

    A group starts at each cube-anchored node (non-depthwise convolution,
    linear, matmul) and absorbs the vector-executed nodes that follow it
    (normalisation, activation, elementwise, softmax...) until the next
    cube node.  Vector-executed nodes with no preceding cube anchor (e.g.
    MobileNet's depthwise convolutions, BERT's embedding layer-norm) form
    vector-only groups — these are the layers whose cube/vector ratio is
    0 in Figure 6. *)

type kind = Cube_anchored | Vector_only

type t = {
  tag : string;               (** anchor (or first) node name *)
  kind : kind;
  nodes : Ascend_nn.Graph.node list;   (** in topological order *)
  gemms : Ascend_nn.Workload.gemm list;
  vector_elems : float;       (** element-ops on the vector unit *)
  input_bytes : int;          (** unique external input bytes of the group *)
  weight_bytes : int;
  output_bytes : int;         (** external output bytes of the group *)
  img2col_expansion : float;  (** A-side im2col expansion; 1.0 for GEMMs *)
  precision : Ascend_arch.Precision.t;
}

val partition : Ascend_nn.Graph.t -> t list
(** Input/Output/Reshape-style bookkeeping nodes are dropped from group
    workloads but kept in [nodes] for traceability. *)

val of_workloads :
  tag:string -> precision:Ascend_arch.Precision.t ->
  Ascend_nn.Workload.t -> t
(** Build a synthetic group straight from a workload record (used for
    backward-pass layers, which have no graph nodes). *)

val pp : Format.formatter -> t -> unit
