module Config = Ascend_arch.Config
module Precision = Ascend_arch.Precision
module I = Ascend_isa.Instruction
module Buffer_id = Ascend_isa.Buffer_id
module Pipe = Ascend_isa.Pipe
module Program = Ascend_isa.Program

type kernel = {
  kernel_name : string;
  generate : Config.t -> Program.t;
}

let f_in = 0 (* MTE2 -> Vector *)
let f_in_free = 1 (* Vector -> MTE2 *)
let f_out = 2 (* Vector -> MTE3 *)
let f_out_free = 3 (* MTE3 -> Vector *)

let div_up = Ascend_util.Stats.divide_round_up

(* row-granular streamed kernel: [passes] vector sweeps per chunk of
   whole rows resident in a quarter of the UB *)
let row_kernel ~name ~rows ~cols ~dtype ~passes =
  if rows <= 0 || cols <= 0 then invalid_arg (name ^ ": empty matrix");
  let generate (config : Config.t) =
    let row_bytes =
      int_of_float (ceil (float_of_int cols *. Precision.size_bytes dtype))
    in
    let budget = config.buffers.ub_bytes / 4 in
    if row_bytes > budget then
      invalid_arg
        (Printf.sprintf "%s: a %d-byte row exceeds the UB budget %d" name
           row_bytes budget);
    let rows_per_chunk = max 1 (budget / row_bytes) in
    let chunks = div_up rows rows_per_chunk in
    let instrs = ref [] in
    let emit i = instrs := i :: !instrs in
    emit (I.Scalar_op { cycles = 4 });
    for c = 0 to chunks - 1 do
      let rows_here = min rows_per_chunk (rows - (c * rows_per_chunk)) in
      let bytes = rows_here * row_bytes in
      if c >= 2 then
        emit (I.Wait_flag { from_pipe = Pipe.Vector; to_pipe = Pipe.Mte2; flag = f_in_free });
      emit (I.mte_move ~src:Buffer_id.External ~dst:Buffer_id.Ub ~bytes ());
      emit (I.Set_flag { from_pipe = Pipe.Mte2; to_pipe = Pipe.Vector; flag = f_in });
      emit (I.Wait_flag { from_pipe = Pipe.Mte2; to_pipe = Pipe.Vector; flag = f_in });
      if c >= 2 then
        emit (I.Wait_flag { from_pipe = Pipe.Mte3; to_pipe = Pipe.Vector; flag = f_out_free });
      List.iter
        (fun pass_name ->
          emit
            (I.Vector_op
               { op_name = pass_name; bytes; reads_ub = true; writes_ub = true }))
        passes;
      emit (I.Set_flag { from_pipe = Pipe.Vector; to_pipe = Pipe.Mte2; flag = f_in_free });
      emit (I.Set_flag { from_pipe = Pipe.Vector; to_pipe = Pipe.Mte3; flag = f_out });
      emit (I.Wait_flag { from_pipe = Pipe.Vector; to_pipe = Pipe.Mte3; flag = f_out });
      emit (I.mte_move ~src:Buffer_id.Ub ~dst:Buffer_id.External ~bytes ());
      emit (I.Set_flag { from_pipe = Pipe.Mte3; to_pipe = Pipe.Vector; flag = f_out_free })
    done;
    Program.make ~name
      ~buffer_peak:[ (Buffer_id.Ub, min config.buffers.ub_bytes (4 * budget)) ]
      (List.rev !instrs)
  in
  { kernel_name = name; generate }

let softmax ~rows ~cols ?(dtype = Precision.Fp16) () =
  row_kernel
    ~name:(Printf.sprintf "softmax_%dx%d" rows cols)
    ~rows ~cols ~dtype
    ~passes:[ "rowmax"; "sub_exp"; "rowsum"; "divide" ]

let layer_norm ~rows ~cols ?(dtype = Precision.Fp16) () =
  row_kernel
    ~name:(Printf.sprintf "layernorm_%dx%d" rows cols)
    ~rows ~cols ~dtype
    ~passes:[ "mean"; "center"; "variance"; "rsqrt_scale"; "affine" ]

let transpose ~rows ~cols ?(dtype = Precision.Fp16) () =
  if rows <= 0 || cols <= 0 then invalid_arg "transpose: empty matrix";
  let name = Printf.sprintf "transpose_%dx%d" rows cols in
  let generate (config : Config.t) =
    let total =
      int_of_float (ceil (float_of_int (rows * cols) *. Precision.size_bytes dtype))
    in
    (* tile so the transposed block double-buffers in L0A *)
    let tile_bytes = config.buffers.l0a_bytes / 2 in
    let tiles = max 1 (div_up total tile_bytes) in
    let chunk = div_up total tiles in
    let instrs = ref [] in
    let emit i = instrs := i :: !instrs in
    emit (I.Scalar_op { cycles = 4 });
    for t = 0 to tiles - 1 do
      let bytes = min chunk (total - (t * chunk)) in
      emit (I.mte_move ~src:Buffer_id.External ~dst:Buffer_id.L1 ~bytes ());
      emit (I.Set_flag { from_pipe = Pipe.Mte2; to_pipe = Pipe.Mte1; flag = f_in });
      emit (I.Wait_flag { from_pipe = Pipe.Mte2; to_pipe = Pipe.Mte1; flag = f_in });
      (* the MTE trans module reorders the block on the L1 -> L0A path *)
      emit
        (I.mte_move ~src:Buffer_id.L1 ~dst:Buffer_id.L0a
           ~transform:I.Transpose ~bytes ());
      emit (I.Set_flag { from_pipe = Pipe.Mte1; to_pipe = Pipe.Vector; flag = f_out });
      emit (I.Wait_flag { from_pipe = Pipe.Mte1; to_pipe = Pipe.Vector; flag = f_out });
      (* drain through UB *)
      emit
        (I.Vector_op
           { op_name = "copy"; bytes; reads_ub = false; writes_ub = true });
      emit (I.Set_flag { from_pipe = Pipe.Vector; to_pipe = Pipe.Mte3; flag = f_out_free });
      emit (I.Wait_flag { from_pipe = Pipe.Vector; to_pipe = Pipe.Mte3; flag = f_out_free });
      emit (I.mte_move ~src:Buffer_id.Ub ~dst:Buffer_id.External ~bytes ())
    done;
    Program.make ~name
      ~buffer_peak:
        [ (Buffer_id.L1, min config.buffers.l1_bytes (2 * chunk));
          (Buffer_id.L0a, min config.buffers.l0a_bytes (2 * chunk));
          (Buffer_id.Ub, min config.buffers.ub_bytes (2 * chunk)) ]
      (List.rev !instrs)
  in
  { kernel_name = name; generate }

let requantize ~elems ~from_dtype ~to_dtype () =
  if elems <= 0 then invalid_arg "requantize: no elements";
  let name =
    Printf.sprintf "requantize_%s_to_%s_%d" (Precision.name from_dtype)
      (Precision.name to_dtype) elems
  in
  let generate (config : Config.t) =
    let in_total =
      int_of_float (ceil (float_of_int elems *. Precision.size_bytes from_dtype))
    in
    let out_total =
      int_of_float (ceil (float_of_int elems *. Precision.size_bytes to_dtype))
    in
    let budget = config.buffers.ub_bytes / 4 in
    let chunks = max 1 (div_up (in_total + out_total) budget) in
    let share total i =
      let base = total / chunks in
      if i = 0 then total - (base * (chunks - 1)) else base
    in
    let instrs = ref [] in
    let emit i = instrs := i :: !instrs in
    emit (I.Scalar_op { cycles = 4 });
    for c = 0 to chunks - 1 do
      if c >= 2 then
        emit (I.Wait_flag { from_pipe = Pipe.Vector; to_pipe = Pipe.Mte2; flag = f_in_free });
      emit
        (I.mte_move ~src:Buffer_id.External ~dst:Buffer_id.Ub
           ~bytes:(share in_total c) ());
      emit (I.Set_flag { from_pipe = Pipe.Mte2; to_pipe = Pipe.Vector; flag = f_in });
      emit (I.Wait_flag { from_pipe = Pipe.Mte2; to_pipe = Pipe.Vector; flag = f_in });
      (* one fused conversion pass over the wider of the two sides *)
      emit
        (I.Vector_op
           { op_name = "requant";
             bytes = max (share in_total c) (share out_total c);
             reads_ub = true; writes_ub = true });
      emit (I.Set_flag { from_pipe = Pipe.Vector; to_pipe = Pipe.Mte2; flag = f_in_free });
      emit (I.Set_flag { from_pipe = Pipe.Vector; to_pipe = Pipe.Mte3; flag = f_out });
      emit (I.Wait_flag { from_pipe = Pipe.Vector; to_pipe = Pipe.Mte3; flag = f_out });
      emit
        (I.mte_move ~src:Buffer_id.Ub ~dst:Buffer_id.External
           ~bytes:(share out_total c) ())
    done;
    Program.make ~name
      ~buffer_peak:[ (Buffer_id.Ub, min config.buffers.ub_bytes budget) ]
      (List.rev !instrs)
  in
  { kernel_name = name; generate }

let registry () =
  [
    ("softmax", fun () -> softmax ~rows:512 ~cols:512 ());
    ("layer_norm", fun () -> layer_norm ~rows:512 ~cols:1024 ());
    ("transpose", fun () -> transpose ~rows:1024 ~cols:1024 ());
    ( "requantize",
      fun () ->
        requantize ~elems:65536 ~from_dtype:Precision.Int32
          ~to_dtype:Precision.Int8 () );
  ]

let simulate config kernel =
  match kernel.generate config with
  | exception Invalid_argument msg -> Error msg
  | program -> Ascend_core_sim.Simulator.run config program
