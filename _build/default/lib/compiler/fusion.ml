module Graph = Ascend_nn.Graph
module Op = Ascend_nn.Op
module Workload = Ascend_nn.Workload
module Shape = Ascend_tensor.Shape

type kind = Cube_anchored | Vector_only

type t = {
  tag : string;
  kind : kind;
  nodes : Graph.node list;
  gemms : Workload.gemm list;
  vector_elems : float;
  input_bytes : int;
  weight_bytes : int;
  output_bytes : int;
  img2col_expansion : float;
  precision : Ascend_arch.Precision.t;
}

let is_anchor (n : Graph.node) = Op.is_cube_op n.op

let is_bookkeeping (n : Graph.node) =
  match n.op with
  | Op.Input | Op.Output | Op.Reshape _ -> true
  | _ -> false

let expansion_of_anchor g (n : Graph.node) =
  match n.op with
  | Op.Conv2d { kh; kw; stride; _ } -> (
    match n.inputs with
    | [ x ] ->
      let input = (Graph.find g x).out_shape in
      let h = Shape.dim input 2 and w = Shape.dim input 3 in
      let oh = Shape.dim n.out_shape 2 and ow = Shape.dim n.out_shape 3 in
      ignore stride;
      float_of_int (oh * ow * kh * kw) /. float_of_int (h * w)
    | _ -> 1.)
  | _ -> 1.

let finish g group_nodes =
  match group_nodes with
  | [] -> None
  | first :: _ ->
    let anchor = if is_anchor first then Some first else None in
    let tag =
      match anchor with Some a -> a.node_name | None -> first.node_name
    in
    let precision = first.dtype in
    let workloads = List.map (Workload.of_node g) group_nodes in
    let combined = List.fold_left Workload.combine Workload.zero workloads in
    (* external input bytes: tensors produced outside the group *)
    let ids = List.map (fun (n : Graph.node) -> n.id) group_nodes in
    let input_bytes =
      List.fold_left
        (fun acc (n : Graph.node) ->
          List.fold_left
            (fun acc i ->
              if List.mem i ids then acc
              else acc + Shape.bytes (Graph.find g i).out_shape ~dtype:n.dtype)
            acc n.inputs)
        0 group_nodes
    in
    (* external output: the last node's product (consumers are outside) *)
    let last = List.nth group_nodes (List.length group_nodes - 1) in
    let output_bytes = Shape.bytes last.out_shape ~dtype:last.dtype in
    let img2col_expansion =
      match anchor with Some a -> expansion_of_anchor g a | None -> 1.
    in
    Some
      {
        tag;
        kind = (match anchor with Some _ -> Cube_anchored | None -> Vector_only);
        nodes = group_nodes;
        gemms = combined.gemms;
        vector_elems = combined.vector_elems;
        input_bytes;
        weight_bytes = combined.weight_bytes;
        output_bytes;
        img2col_expansion;
        precision;
      }

let partition g =
  let interesting =
    List.filter (fun n -> not (is_bookkeeping n)) (Graph.nodes g)
  in
  let rec split acc current = function
    | [] -> List.rev (match finish g (List.rev current) with
      | Some grp -> grp :: acc
      | None -> acc)
    | n :: rest ->
      if is_anchor n then
        let acc =
          match finish g (List.rev current) with
          | Some grp -> grp :: acc
          | None -> acc
        in
        split acc [ n ] rest
      else split acc (n :: current) rest
  in
  split [] [] interesting

let of_workloads ~tag ~precision (w : Workload.t) =
  {
    tag;
    kind = (if w.gemms = [] then Vector_only else Cube_anchored);
    nodes = [];
    gemms = w.gemms;
    vector_elems = w.vector_elems;
    input_bytes = w.input_bytes;
    weight_bytes = w.weight_bytes;
    output_bytes = w.output_bytes;
    img2col_expansion = 1.;
    precision;
  }

let pp ppf t =
  Format.fprintf ppf "%-24s %-13s %d nodes, %d GEMMs, %.2f Mvec-elems" t.tag
    (match t.kind with Cube_anchored -> "cube" | Vector_only -> "vector-only")
    (List.length t.nodes) (List.length t.gemms)
    (t.vector_elems /. 1e6)
