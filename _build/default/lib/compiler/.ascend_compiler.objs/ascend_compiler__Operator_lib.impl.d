lib/compiler/operator_lib.ml: Ascend_arch Ascend_core_sim Ascend_isa Ascend_util List Printf
