lib/compiler/memory_planner.ml: Ascend_nn Ascend_tensor List Printf
