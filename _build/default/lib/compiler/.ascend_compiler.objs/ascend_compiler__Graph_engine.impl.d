lib/compiler/graph_engine.ml: Array Ascend_core_sim Ascend_nn Engine Format Fusion Hashtbl List Printf String
