lib/compiler/tiling.ml: Ascend_arch Ascend_core_sim Ascend_util Float Format List
