lib/compiler/fusion.mli: Ascend_arch Ascend_nn Format
