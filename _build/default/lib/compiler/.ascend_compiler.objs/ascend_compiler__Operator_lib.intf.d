lib/compiler/operator_lib.mli: Ascend_arch Ascend_core_sim Ascend_isa
