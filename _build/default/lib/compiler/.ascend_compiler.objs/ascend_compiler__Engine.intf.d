lib/compiler/engine.mli: Ascend_arch Ascend_core_sim Ascend_isa Ascend_nn Codegen Format Fusion
