lib/compiler/memory_planner.mli: Ascend_nn
