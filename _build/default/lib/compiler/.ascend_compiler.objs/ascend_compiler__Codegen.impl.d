lib/compiler/codegen.ml: Ascend_arch Ascend_isa Ascend_nn Ascend_util Float Fusion List Printf Tiling
