lib/compiler/graph_engine.mli: Ascend_arch Ascend_nn Format
