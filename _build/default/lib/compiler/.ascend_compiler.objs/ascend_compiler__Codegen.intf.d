lib/compiler/codegen.mli: Ascend_arch Ascend_isa Ascend_nn Fusion
