lib/compiler/fusion.ml: Ascend_arch Ascend_nn Ascend_tensor Format List
