lib/compiler/engine.ml: Ascend_arch Ascend_core_sim Ascend_isa Ascend_nn Ascend_util Codegen Format Fusion List Printf String
