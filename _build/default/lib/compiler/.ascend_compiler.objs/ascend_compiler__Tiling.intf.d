lib/compiler/tiling.mli: Ascend_arch Format
