(** Dataflow-architecture model (paper §7.1: "Dataflow architecture ...
    can achieve high throughput for specific tasks.  However, dataflow
    architectures are incapable of performing main stream synchronous
    training ... and can incur low computing utilization and large
    output delay" in latency-bound scenarios).

    Model: the fabric is spatially configured per layer; a configured
    layer streams at near-peak throughput, but every layer switch costs a
    reconfiguration, so single-sample latency (mobile/automotive) is
    dominated by [layers x reconfiguration] while large-batch throughput
    is excellent.  Synchronous training is rejected outright. *)

type t = {
  name : string;
  peak_flops : float;
  streaming_efficiency : float;   (** sustained/peak once configured *)
  reconfiguration_s : float;      (** per layer-switch *)
  power_w : float;
}

val generic_dataflow : t
(** A 100-TFLOPS fabric with 50 us reconfiguration. *)

val batch_seconds :
  t -> layers:Ascend_nn.Workload.t list -> batch:int -> float
(** One pass over [batch] samples: per layer, reconfigure once then
    stream the whole batch. *)

val single_sample_latency_s : t -> layers:Ascend_nn.Workload.t list -> float
(** [batch_seconds ~batch:1] — the mobile/automotive latency the paper
    says dataflow machines lose on. *)

val training_supported : t -> bool
(** Always [false] (the §7.1 claim). *)

val utilization : t -> layers:Ascend_nn.Workload.t list -> batch:int -> float
(** Achieved FLOPS over peak for the batch run. *)
