(** Weight-stationary systolic array model (TPU-class; paper §6.1/§7.1).

    The mechanism the paper criticises is explicit here: every weight
    tile costs an array-load plus fill/drain latency of [rows + cols]
    cycles, so small matrices (mobile batch-1 inference) waste most of
    the pipeline, and normalisation layers between GEMMs force a drain
    ("systolic array's pipeline is easily interrupted by the
    Normalization layer" — modelled as a per-vector-layer drain). *)

type t = {
  name : string;
  rows : int;
  cols : int;
  arrays : int;            (** parallel MXUs *)
  frequency_ghz : float;
  sustained_efficiency : float;
      (** sustained/ideal on real workloads: control, XLA padding,
          pipeline refills between layers — calibrated against public
          MLPerf TPUv3 ResNet-50 throughput *)
  vector_bytes_per_cycle : int;  (** the VPU beside the array *)
  hbm_bytes_per_s : float;
  power_w : float;
}

val tpu_v3 : t
(** 4x 128x128 MXUs at 0.82 GHz ~ 106 TFLOPS bf16, 1.2 TB/s HBM. *)

val fsd_like : t
(** Tesla-FSD-like: 2x 96x96 int8 arrays at 2 GHz ~ 73 TOPS. *)

val peak_flops : t -> float

val gemm_cycles : t -> m:int -> k:int -> n:int -> int
(** Weight-stationary schedule: per (k,n) weight tile, load [rows]
    cycles, stream m activations, drain [rows + cols]. *)

val gemm_utilization : t -> m:int -> k:int -> n:int -> float
(** Achieved / peak MACs for one GEMM. *)

val layer_seconds :
  t -> gemms:Ascend_nn.Workload.gemm list -> vector_elems:float ->
  bytes:int -> float
(** One layer: GEMMs on the array (each vector layer interposes a drain),
    vector work on the VPU, all behind the HBM roofline. *)

val network_seconds : t -> Ascend_nn.Workload.t list -> float
