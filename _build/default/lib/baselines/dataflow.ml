type t = {
  name : string;
  peak_flops : float;
  streaming_efficiency : float;
  reconfiguration_s : float;
  power_w : float;
}

let generic_dataflow =
  { name = "dataflow fabric"; peak_flops = 100e12; streaming_efficiency = 0.85;
    reconfiguration_s = 50e-6; power_w = 150. }

let layer_flops (w : Ascend_nn.Workload.t) = Ascend_nn.Workload.total_flops w

let batch_seconds t ~layers ~batch =
  if batch <= 0 then invalid_arg "Dataflow.batch_seconds: non-positive batch";
  List.fold_left
    (fun acc w ->
      let stream =
        float_of_int batch *. layer_flops w
        /. (t.peak_flops *. t.streaming_efficiency)
      in
      acc +. t.reconfiguration_s +. stream)
    0. layers

let single_sample_latency_s t ~layers = batch_seconds t ~layers ~batch:1

let training_supported _ = false

let utilization t ~layers ~batch =
  let total =
    float_of_int batch
    *. List.fold_left (fun acc w -> acc +. layer_flops w) 0. layers
  in
  let time = batch_seconds t ~layers ~batch in
  if time <= 0. then 0. else total /. time /. t.peak_flops
