lib/baselines/simt_gpu.ml: Ascend_nn Ascend_util Float List
