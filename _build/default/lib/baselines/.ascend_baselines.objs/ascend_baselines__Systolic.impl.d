lib/baselines/systolic.ml: Ascend_nn Ascend_util Float List
