lib/baselines/cpu.ml: Ascend_nn Ascend_util Float List
