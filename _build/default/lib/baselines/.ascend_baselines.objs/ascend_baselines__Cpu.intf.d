lib/baselines/cpu.mli: Ascend_nn
