lib/baselines/simt_gpu.mli: Ascend_nn
