lib/baselines/dataflow.mli: Ascend_nn
