lib/baselines/dataflow.ml: Ascend_nn List
