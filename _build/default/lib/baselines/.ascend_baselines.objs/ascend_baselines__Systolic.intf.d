lib/baselines/systolic.mli: Ascend_nn
