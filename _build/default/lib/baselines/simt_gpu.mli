(** SIMT GPU with small tensor cores (V100-class; paper §6.1/§7.1).

    GEMMs run on the tensor cores with a tile-quantisation utilisation
    factor (the 4x4x4 granularity wastes little, but warp scheduling and
    the register-file path bound achieved efficiency — the paper's
    "opportunities of data reuse are limited by inherent schemes and the
    small size of Tensor cores" appears as [tensor_efficiency]).
    Elementwise work runs on the CUDA cores; every layer also sits behind
    the HBM roofline. *)

type t = {
  name : string;
  sms : int;
  tensor_cores_per_sm : int;
  tensor_core_dims : int * int * int;
  frequency_ghz : float;
  tensor_efficiency : float;   (** sustained/peak on large GEMMs *)
  simt_flops : float;          (** CUDA-core fp32 peak *)
  hbm_bytes_per_s : float;
  power_w : float;
  area_mm2 : float;
}

val v100 : t
(** 80 SMs x 8 TCs x 4x4x4 at 1.53 GHz = 125 TFLOPS peak, ~62%
    sustained GEMM efficiency (calibrated against the public ResNet-50
    mixed-precision training number), 900 GB/s HBM2, 300 W, 815 mm2. *)

val peak_tensor_flops : t -> float

val gemm_seconds : t -> m:int -> k:int -> n:int -> float
(** Tile quantisation to the tensor-core dims, SM occupancy for small
    GEMMs, then the efficiency factor. *)

val layer_seconds :
  t -> gemms:Ascend_nn.Workload.gemm list -> vector_elems:float ->
  bytes:int -> float

val network_seconds : t -> Ascend_nn.Workload.t list -> float
