type t = {
  name : string;
  cores : int;
  frequency_ghz : float;
  flops_per_core_per_cycle : int;
  dnn_efficiency : float;
  dram_bytes_per_s : float;
  power_w : float;
}

let xeon_8180 =
  { name = "Xeon 8180"; cores = 28; frequency_ghz = 2.5;
    flops_per_core_per_cycle = 21; (* ~1.5 TFLOPS at AVX-512 clocks *)
    dnn_efficiency = 0.4; dram_bytes_per_s = 128e9; power_w = 205. }

let peak_flops t =
  float_of_int (t.cores * t.flops_per_core_per_cycle)
  *. t.frequency_ghz *. Ascend_util.Units.giga

let layer_seconds t ~flops ~bytes =
  let compute = flops /. (peak_flops t *. t.dnn_efficiency) in
  let memory = float_of_int bytes /. t.dram_bytes_per_s in
  Float.max compute memory

let network_seconds t layers =
  List.fold_left
    (fun acc (w : Ascend_nn.Workload.t) ->
      acc
      +. layer_seconds t
           ~flops:(Ascend_nn.Workload.total_flops w)
           ~bytes:(w.input_bytes + w.weight_bytes + w.output_bytes))
    0. layers
