type t = {
  name : string;
  rows : int;
  cols : int;
  arrays : int;
  frequency_ghz : float;
  sustained_efficiency : float;
  vector_bytes_per_cycle : int;
  hbm_bytes_per_s : float;
  power_w : float;
}

let tpu_v3 =
  { name = "TPUv3"; rows = 128; cols = 128; arrays = 4; frequency_ghz = 0.82;
    sustained_efficiency = 0.62;
    vector_bytes_per_cycle = 2048; hbm_bytes_per_s = 1.2e12; power_w = 250. }

let fsd_like =
  { name = "FSD-like"; rows = 96; cols = 96; arrays = 2; frequency_ghz = 2.0;
    sustained_efficiency = 0.62;
    vector_bytes_per_cycle = 512; hbm_bytes_per_s = 64e9; power_w = 100. }

let peak_flops t =
  float_of_int (2 * t.rows * t.cols * t.arrays)
  *. t.frequency_ghz *. Ascend_util.Units.giga

let div_up = Ascend_util.Stats.divide_round_up

let gemm_cycles t ~m ~k ~n =
  let k_tiles = div_up k t.rows and n_tiles = div_up n t.cols in
  let per_tile = t.rows + m + t.rows + t.cols in
  (* weight load + activation stream + fill/drain per weight tile; tiles
     spread across the parallel arrays *)
  div_up (k_tiles * n_tiles) t.arrays * per_tile

let gemm_utilization t ~m ~k ~n =
  let macs = float_of_int m *. float_of_int k *. float_of_int n in
  let cycles = float_of_int (gemm_cycles t ~m ~k ~n) in
  let peak_per_cycle = float_of_int (t.rows * t.cols * t.arrays) in
  Ascend_util.Stats.clamp ~lo:0. ~hi:1. (macs /. (cycles *. peak_per_cycle))

let layer_seconds t ~gemms ~vector_elems ~bytes =
  let cycle_s = 1. /. (t.frequency_ghz *. Ascend_util.Units.giga) in
  let gemm_cyc =
    List.fold_left
      (fun acc (g : Ascend_nn.Workload.gemm) ->
        acc + (g.count * gemm_cycles t ~m:g.m ~k:g.k ~n:g.n))
      0 gemms
  in
  (* a vector layer interrupts the pipeline: one full drain *)
  let drain = if vector_elems > 0. then t.rows + t.cols else 0 in
  let vector_cyc =
    int_of_float
      (ceil (vector_elems *. 2. /. float_of_int t.vector_bytes_per_cycle))
  in
  let compute_s =
    float_of_int (gemm_cyc + drain + vector_cyc)
    *. cycle_s /. t.sustained_efficiency
  in
  let memory_s = float_of_int bytes /. t.hbm_bytes_per_s in
  Float.max compute_s memory_s

let network_seconds t layers =
  List.fold_left
    (fun acc (w : Ascend_nn.Workload.t) ->
      acc
      +. layer_seconds t ~gemms:w.gemms ~vector_elems:w.vector_elems
           ~bytes:(w.input_bytes + w.weight_bytes + w.output_bytes))
    0. layers
