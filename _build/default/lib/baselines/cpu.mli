(** Server-CPU roofline (Intel Xeon 8180-class; paper Table 7): AVX-512
    FMA peak with a realistic DNN sustained efficiency, behind a DDR4
    bandwidth roofline. *)

type t = {
  name : string;
  cores : int;
  frequency_ghz : float;
  flops_per_core_per_cycle : int;
  dnn_efficiency : float;
  dram_bytes_per_s : float;
  power_w : float;
}

val xeon_8180 : t
(** 28 cores at 2.5 GHz; the paper quotes 1.5 TFLOPS peak (fp32 with
    sustained AVX-512 clocks), 128 GB/s DDR4, 205 W. *)

val peak_flops : t -> float
val layer_seconds : t -> flops:float -> bytes:int -> float
val network_seconds : t -> Ascend_nn.Workload.t list -> float
