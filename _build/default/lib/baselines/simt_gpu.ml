type t = {
  name : string;
  sms : int;
  tensor_cores_per_sm : int;
  tensor_core_dims : int * int * int;
  frequency_ghz : float;
  tensor_efficiency : float;
  simt_flops : float;
  hbm_bytes_per_s : float;
  power_w : float;
  area_mm2 : float;
}

let v100 =
  {
    name = "V100";
    sms = 80;
    tensor_cores_per_sm = 8;
    tensor_core_dims = (4, 4, 4);
    frequency_ghz = 1.53;
    tensor_efficiency = 0.62;
    simt_flops = 15.7e12;
    hbm_bytes_per_s = 900e9;
    power_w = 300.;
    area_mm2 = 815.;
  }

let peak_tensor_flops t =
  let dm, dk, dn = t.tensor_core_dims in
  float_of_int (2 * dm * dk * dn * t.tensor_cores_per_sm * t.sms)
  *. t.frequency_ghz *. Ascend_util.Units.giga

let div_up = Ascend_util.Stats.divide_round_up

let gemm_seconds t ~m ~k ~n =
  let dm, dk, dn = t.tensor_core_dims in
  (* tile quantisation: padded problem *)
  let mp = div_up m dm * dm and kp = div_up k dk * dk and np = div_up n dn * dn in
  let padded_macs = float_of_int mp *. float_of_int kp *. float_of_int np in
  (* occupancy: a GEMM smaller than one wave of thread blocks cannot fill
     all SMs; one block covers a 64x64 output tile *)
  let blocks = div_up mp 64 * div_up np 64 in
  let occupancy =
    Float.min 1. (float_of_int blocks /. float_of_int t.sms)
  in
  let effective =
    peak_tensor_flops t /. 2. *. t.tensor_efficiency *. occupancy
  in
  padded_macs /. effective

let layer_seconds t ~gemms ~vector_elems ~bytes =
  let gemm_s =
    List.fold_left
      (fun acc (g : Ascend_nn.Workload.gemm) ->
        acc +. (float_of_int g.count *. gemm_seconds t ~m:g.m ~k:g.k ~n:g.n))
      0. gemms
  in
  let vector_s = vector_elems /. t.simt_flops in
  let memory_s = float_of_int bytes /. t.hbm_bytes_per_s in
  Float.max (gemm_s +. vector_s) memory_s

let network_seconds t layers =
  List.fold_left
    (fun acc (w : Ascend_nn.Workload.t) ->
      acc
      +. layer_seconds t ~gemms:w.gemms ~vector_elems:w.vector_elems
           ~bytes:(w.input_bytes + w.weight_bytes + w.output_bytes))
    0. layers
