(** Set-associative last-level cache model with LRU replacement.

    Used functionally (per-address access stream) by the unit tests and
    statistically (working-set capacity model) by the SoC simulations,
    including the 3D-SRAM capacity experiment of paper §4.1 (96 MB ->
    720 MB: ResNet50 x1.71, BERT x1.51). *)

type t

type stats = { hits : int; misses : int; evictions : int }

val create : ?line_bytes:int -> ?ways:int -> capacity_bytes:int -> unit -> t
(** Default 128-byte lines, 16 ways.  Raises [Invalid_argument] if the
    capacity is not a positive multiple of [line_bytes * ways]... the
    capacity is rounded down to a whole number of sets instead. *)

val capacity_bytes : t -> int
val line_bytes : t -> int
val sets : t -> int

val access : t -> addr:int -> write:bool -> bool
(** Touch one address; returns [true] on hit.  Misses allocate. *)

val access_range : t -> addr:int -> bytes:int -> write:bool -> int * int
(** Touch every line in a range; returns (hits, misses). *)

val stats : t -> stats
val reset_stats : t -> unit
val hit_rate : t -> float

(** {2 Working-set capacity model}

    The statistical counterpart used at SoC scale: given a per-layer
    working set and an inter-layer reuse set, estimate the fraction of
    traffic served by the LLC. *)

val hit_fraction : capacity_bytes:int -> working_set_bytes:int -> float
(** 1.0 when the working set fits; degrades smoothly (proportionally to
    capacity/working-set) beyond that, floored at 0. *)
