(** The memory-wall arithmetic of paper §4.1 / Table 6: the bandwidth a
    256-TFLOPS cube engine would need with no data reuse, and the ladder
    of ~10x reductions each memory level must deliver through reuse. *)

type rung = {
  level : string;
  bandwidth_bytes_per_s : float;
  ratio_to_cube : float;  (** level bandwidth / cube demand *)
}

val cube_demand_bytes_per_s : peak_flops:float -> float
(** 8 bytes of operand traffic per FLOP without reuse: two fp16 sources
    and an fp32 accumulator read+write per MAC (2 FLOPs). *)

val table6 : peak_flops:float -> rung list
(** The seven rungs of Table 6 for a chip of the given peak (256 TFLOPS
    for Ascend 910): cube engine, L0, L1, LLC, HBM, intra-server,
    inter-server. *)

val required_reuse_factor : upper:rung -> lower:rung -> float
(** How many times each byte must be reused between two adjacent levels
    for the lower level's bandwidth to suffice. *)
