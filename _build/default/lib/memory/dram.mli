(** External-memory channel models: the HBM subsystem behind the Ascend
    910 I/O die (4 stacks, 1.2 TB/s total) and LPDDR-class channels for
    the mobile and automotive parts.  Bandwidth is shared max-min among
    requestors; latency inflates with utilisation. *)

type t = {
  kind : string;
  channels : int;
  bandwidth_per_channel : float;  (** bytes/s *)
  base_latency_ns : float;
}

val hbm2_ascend910 : t
(** 4 stacks x 300 GB/s = 1.2 TB/s, ~120 ns loaded-idle latency. *)

val lpddr4_mobile : t
(** 4 x 10.7 GB/s = 42.7 GB/s (Kirin 990-class). *)

val lpddr5_automotive : t
(** 4 x 25.6 GB/s (Ascend 610-class). *)

val total_bandwidth : t -> float

val share :
  t -> demands:float array -> float array
(** Max-min fair allocation of the total bandwidth. *)

val transfer_seconds : t -> bytes:float -> requestors:int -> float
(** Time for one requestor among [requestors] equal competitors to move
    [bytes]. *)

val loaded_latency_ns : t -> utilization:float -> float
