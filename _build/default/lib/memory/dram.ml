type t = {
  kind : string;
  channels : int;
  bandwidth_per_channel : float;
  base_latency_ns : float;
}

let hbm2_ascend910 =
  { kind = "HBM2"; channels = 4; bandwidth_per_channel = 300e9;
    base_latency_ns = 120. }

let lpddr4_mobile =
  { kind = "LPDDR4X"; channels = 4; bandwidth_per_channel = 10.7e9;
    base_latency_ns = 100. }

let lpddr5_automotive =
  { kind = "LPDDR5"; channels = 4; bandwidth_per_channel = 25.6e9;
    base_latency_ns = 90. }

let total_bandwidth t = float_of_int t.channels *. t.bandwidth_per_channel

let share t ~demands =
  Ascend_util.Fairness.max_min_fair ~capacity:(total_bandwidth t) ~demands

let transfer_seconds t ~bytes ~requestors =
  if bytes <= 0. then 0.
  else
    let per =
      total_bandwidth t /. float_of_int (max 1 requestors)
    in
    bytes /. per

let loaded_latency_ns t ~utilization =
  t.base_latency_ns *. Mpam.latency_factor ~utilization
