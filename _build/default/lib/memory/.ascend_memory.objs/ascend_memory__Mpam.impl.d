lib/memory/mpam.ml: Array Ascend_util Float List Printf
