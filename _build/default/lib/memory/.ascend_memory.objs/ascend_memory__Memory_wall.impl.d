lib/memory/memory_wall.ml:
