lib/memory/llc.ml: Array Ascend_util
