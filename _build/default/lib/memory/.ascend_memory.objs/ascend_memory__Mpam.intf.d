lib/memory/mpam.mli:
