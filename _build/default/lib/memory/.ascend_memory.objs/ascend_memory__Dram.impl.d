lib/memory/dram.ml: Ascend_util Mpam
