lib/memory/memory_wall.mli:
