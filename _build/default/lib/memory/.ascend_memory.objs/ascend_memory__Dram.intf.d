lib/memory/dram.mli:
