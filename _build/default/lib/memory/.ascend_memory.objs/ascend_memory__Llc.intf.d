lib/memory/llc.mli:
