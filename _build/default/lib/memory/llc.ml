type stats = { hits : int; misses : int; evictions : int }

type t = {
  line_bytes : int;
  ways : int;
  set_count : int;
  (* sets.(s) is an array of (tag, last_used); tag = -1 means invalid *)
  tags : int array array;
  stamps : int array array;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(line_bytes = 128) ?(ways = 16) ~capacity_bytes () =
  if line_bytes <= 0 || ways <= 0 || capacity_bytes <= 0 then
    invalid_arg "Llc.create: non-positive parameter";
  let set_count = max 1 (capacity_bytes / (line_bytes * ways)) in
  {
    line_bytes;
    ways;
    set_count;
    tags = Array.init set_count (fun _ -> Array.make ways (-1));
    stamps = Array.init set_count (fun _ -> Array.make ways 0);
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity_bytes t = t.line_bytes * t.ways * t.set_count
let line_bytes t = t.line_bytes
let sets t = t.set_count

let access t ~addr ~write =
  ignore write;
  if addr < 0 then invalid_arg "Llc.access: negative address";
  t.clock <- t.clock + 1;
  let line = addr / t.line_bytes in
  let set = line mod t.set_count in
  let tag = line / t.set_count in
  let tags = t.tags.(set) and stamps = t.stamps.(set) in
  let rec find i =
    if i >= t.ways then None
    else if tags.(i) = tag then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
    stamps.(i) <- t.clock;
    t.hits <- t.hits + 1;
    true
  | None ->
    t.misses <- t.misses + 1;
    (* choose an invalid way, else LRU *)
    let victim = ref 0 in
    let found_invalid = ref false in
    for i = 0 to t.ways - 1 do
      if (not !found_invalid) && tags.(i) = -1 then begin
        victim := i;
        found_invalid := true
      end
      else if (not !found_invalid) && stamps.(i) < stamps.(!victim) then
        victim := i
    done;
    if not !found_invalid then t.evictions <- t.evictions + 1;
    tags.(!victim) <- tag;
    stamps.(!victim) <- t.clock;
    false

let access_range t ~addr ~bytes ~write =
  if bytes < 0 then invalid_arg "Llc.access_range: negative size";
  let first = addr / t.line_bytes in
  let last = (addr + max 0 (bytes - 1)) / t.line_bytes in
  let hits = ref 0 and misses = ref 0 in
  for line = first to last do
    if access t ~addr:(line * t.line_bytes) ~write then incr hits
    else incr misses
  done;
  (!hits, !misses)

let stats t = { hits = t.hits; misses = t.misses; evictions = t.evictions }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.hits /. float_of_int total

let hit_fraction ~capacity_bytes ~working_set_bytes =
  if working_set_bytes <= 0 then 1.
  else if capacity_bytes <= 0 then 0.
  else
    Ascend_util.Stats.clamp ~lo:0. ~hi:1.
      (float_of_int capacity_bytes /. float_of_int working_set_bytes)
