(** MPAM-style memory-system resource partitioning and QoS (paper §3.3):
    traffic classes with guaranteed minimum and capped maximum bandwidth
    shares plus strict priority for the remainder.  The automotive SoC
    uses this to bound inference latency under background load, and QoS
    to avoid starvation. *)

type class_spec = {
  class_name : string;
  min_share : float;   (** guaranteed fraction of total bandwidth, [0,1] *)
  max_share : float;   (** cap fraction, >= min_share *)
  priority : int;      (** higher wins the leftover bandwidth *)
}

type allocation = {
  spec : class_spec;
  demand : float;      (** requested bytes/s *)
  granted : float;     (** allocated bytes/s *)
}

val partition :
  total_bandwidth:float -> (class_spec * float) list -> allocation list
(** Allocate bandwidth to (class, demand) pairs:
    1. every class receives min(demand, min_share * total);
    2. leftover flows to classes in priority order up to their cap and
       their demand;
    3. any remainder is shared max-min among still-unsatisfied classes
       ignoring caps (work conservation — QoS avoids starvation but does
       not waste bandwidth).
    Raises [Invalid_argument] on malformed specs (shares outside [0,1],
    max < min, min shares summing over 1). *)

val latency_factor : utilization:float -> float
(** Queueing delay multiplier versus an idle memory system: an M/D/1-like
    [1 + u/(2(1-u))] curve, clamped at 50x when saturated.  Used to
    translate granted-vs-demand into access-latency inflation. *)

val effective_latency_ns :
  base_ns:float -> demand:float -> granted:float -> float
(** Latency once the class's utilisation of its own grant is accounted:
    demand <= granted keeps latency near base; demand above the grant
    saturates the class's partition. *)
