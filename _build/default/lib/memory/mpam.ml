type class_spec = {
  class_name : string;
  min_share : float;
  max_share : float;
  priority : int;
}

type allocation = { spec : class_spec; demand : float; granted : float }

let validate specs =
  let min_sum = ref 0. in
  List.iter
    (fun (s, demand) ->
      if demand < 0. then invalid_arg "Mpam.partition: negative demand";
      if s.min_share < 0. || s.min_share > 1. || s.max_share < s.min_share
         || s.max_share > 1.
      then
        invalid_arg
          (Printf.sprintf "Mpam.partition: malformed shares for %s" s.class_name);
      min_sum := !min_sum +. s.min_share)
    specs;
  if !min_sum > 1. +. 1e-9 then
    invalid_arg "Mpam.partition: minimum shares exceed the total"

let partition ~total_bandwidth specs =
  if total_bandwidth < 0. then invalid_arg "Mpam.partition: negative bandwidth";
  validate specs;
  let allocs =
    Array.of_list
      (List.map (fun (s, d) -> ref { spec = s; demand = d; granted = 0. }) specs)
  in
  let remaining = ref total_bandwidth in
  (* phase 1: guaranteed minimums *)
  Array.iter
    (fun a ->
      let g = Float.min !a.demand (!a.spec.min_share *. total_bandwidth) in
      a := { !a with granted = g };
      remaining := !remaining -. g)
    allocs;
  (* phase 2: leftover by strict priority up to the cap *)
  let by_priority =
    List.sort
      (fun a b -> compare !b.spec.priority !a.spec.priority)
      (Array.to_list allocs)
  in
  List.iter
    (fun a ->
      let cap = !a.spec.max_share *. total_bandwidth in
      let want = Float.min !a.demand cap -. !a.granted in
      if want > 0. && !remaining > 0. then begin
        let g = Float.min want !remaining in
        a := { !a with granted = !a.granted +. g };
        remaining := !remaining -. g
      end)
    by_priority;
  (* phase 3: work conservation past the caps *)
  if !remaining > 1e-9 then begin
    let residual =
      Array.map (fun a -> Float.max 0. (!a.demand -. !a.granted)) allocs
    in
    let extra =
      Ascend_util.Fairness.max_min_fair ~capacity:!remaining ~demands:residual
    in
    Array.iteri
      (fun i a -> a := { !a with granted = !a.granted +. extra.(i) })
      allocs
  end;
  Array.to_list (Array.map (fun a -> !a) allocs)

let latency_factor ~utilization =
  let u = Ascend_util.Stats.clamp ~lo:0. ~hi:0.999 utilization in
  Float.min 50. (1. +. (u /. (2. *. (1. -. u))))

let effective_latency_ns ~base_ns ~demand ~granted =
  if granted <= 0. then base_ns *. 50.
  else base_ns *. latency_factor ~utilization:(Float.min 1. (demand /. granted))
