type rung = {
  level : string;
  bandwidth_bytes_per_s : float;
  ratio_to_cube : float;
}

let cube_demand_bytes_per_s ~peak_flops = peak_flops *. 8.

let tb = 1e12
let gb = 1e9

let table6 ~peak_flops =
  let demand = cube_demand_bytes_per_s ~peak_flops in
  let rung level bandwidth_bytes_per_s =
    { level; bandwidth_bytes_per_s; ratio_to_cube = bandwidth_bytes_per_s /. demand }
  in
  [
    rung "Cube Engine" demand;
    (* L0 matches the cube demand exactly; each level below relies on a
       ~10x reuse factor (paper: "we attempted to reduce the memory
       bandwidth by 10 times in each lower layer") *)
    rung "L0 Memory" demand;
    rung "L1 Memory" (demand /. 10.);
    rung "LLC Memory" (demand /. 100.);
    rung "HBM Memory" (1. *. tb);
    rung "Intra AI Server (8 chips)" (50. *. gb);
    rung "Inter AI Server" (10. *. gb);
  ]

let required_reuse_factor ~upper ~lower =
  if lower.bandwidth_bytes_per_s <= 0. then infinity
  else upper.bandwidth_bytes_per_s /. lower.bandwidth_bytes_per_s
