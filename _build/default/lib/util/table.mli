(** Plain-text table rendering for the benchmark harness.  Each bench
    section prints rows in the same shape as the paper's tables. *)

type align = Left | Right

type t

val create : ?title:string -> header:string list -> unit -> t
(** Create a table.  Every subsequent row must have as many cells as the
    header. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width does not match the header. *)

val add_rows : t -> string list list -> unit

val add_separator : t -> unit
(** A horizontal rule between row groups. *)

val render : ?align:align -> t -> string
(** Render with box-drawing in ASCII.  [align] applies to all non-header
    cells (default [Right], which suits numeric tables). *)

val print : ?align:align -> t -> unit
(** [render] to stdout followed by a newline. *)

val cell_float : ?decimals:int -> float -> string
(** Format a float cell; defaults to 2 decimals, switching to scientific
    notation for very large or small magnitudes. *)

val cell_int : int -> string
val cell_ratio : float -> string
(** Format as a multiplier, e.g. "1.71x". *)
