(** Deterministic splittable PRNG (SplitMix64) so workload generation,
    weight initialisation and traffic patterns are reproducible across
    runs without threading global [Random] state through the stack. *)

type t

val create : seed:int -> t

val split : t -> t
(** An independent stream; the parent continues unaffected. *)

val int : t -> bound:int -> int
(** Uniform in [0, bound).  Raises [Invalid_argument] on [bound <= 0]. *)

val float : t -> bound:float -> float
(** Uniform in [0, bound). *)

val uniform : t -> lo:float -> hi:float -> float

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)
