(** Max-min fair allocation of a shared resource — used for HBM bandwidth
    sharing among cores and for flow-level NoC link allocation. *)

val max_min_fair : capacity:float -> demands:float array -> float array
(** Allocate [capacity] among demanders: repeatedly give every unsatisfied
    demander an equal share of the remainder; demanders needing less keep
    only what they need.  Result satisfies: sum <= capacity; no allocation
    exceeds its demand; and the allocation is max-min optimal.  Raises
    [Invalid_argument] on negative capacity or demands. *)

val weighted_max_min_fair :
  capacity:float -> demands:float array -> weights:float array -> float array
(** Same, with shares proportional to positive weights. *)

val bottleneck_throughput :
  link_capacity:float -> flows_on_link:int -> float
(** Per-flow rate on a saturated link under equal sharing. *)
