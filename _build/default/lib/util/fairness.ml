let check_inputs ~capacity ~demands =
  if capacity < 0. then invalid_arg "Fairness: negative capacity";
  Array.iter
    (fun d -> if d < 0. then invalid_arg "Fairness: negative demand")
    demands

let weighted_max_min_fair ~capacity ~demands ~weights =
  check_inputs ~capacity ~demands;
  if Array.length weights <> Array.length demands then
    invalid_arg "Fairness: weights length mismatch";
  Array.iter (fun w -> if w <= 0. then invalid_arg "Fairness: non-positive weight") weights;
  let n = Array.length demands in
  let alloc = Array.make n 0. in
  let satisfied = Array.make n false in
  let remaining = ref capacity in
  let continue_ = ref true in
  while !continue_ do
    let active_weight = ref 0. in
    for i = 0 to n - 1 do
      if not satisfied.(i) then active_weight := !active_weight +. weights.(i)
    done;
    if !active_weight = 0. || !remaining <= 1e-12 then continue_ := false
    else begin
      let progressed = ref false in
      let share_per_weight = !remaining /. !active_weight in
      (* first satisfy everyone whose residual demand is below their share *)
      for i = 0 to n - 1 do
        if (not satisfied.(i))
           && demands.(i) -. alloc.(i) <= share_per_weight *. weights.(i) +. 1e-12
        then begin
          remaining := !remaining -. (demands.(i) -. alloc.(i));
          alloc.(i) <- demands.(i);
          satisfied.(i) <- true;
          progressed := true
        end
      done;
      if not !progressed then begin
        (* everyone is bottlenecked: hand out the equal shares and stop *)
        for i = 0 to n - 1 do
          if not satisfied.(i) then
            alloc.(i) <- alloc.(i) +. (share_per_weight *. weights.(i))
        done;
        continue_ := false
      end
    end
  done;
  alloc

let max_min_fair ~capacity ~demands =
  let weights = Array.make (Array.length demands) 1. in
  if Array.length demands = 0 then [||]
  else weighted_max_min_fair ~capacity ~demands ~weights

let bottleneck_throughput ~link_capacity ~flows_on_link =
  if flows_on_link <= 0 then link_capacity
  else link_capacity /. float_of_int flows_on_link
