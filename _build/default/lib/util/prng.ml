type t = { mutable state : int64 }

let golden_gamma = 0x9e3779b97f4a7c15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = bits64 t in
  { state = mix64 seed }

let int t ~bound =
  if bound <= 0 then invalid_arg "Prng.int: non-positive bound";
  (* rejection-free for our purposes: modulo bias is negligible for the
     bounds used in workload generation (far below 2^32).  Keep 62 bits so
     the value fits OCaml's native int without wrapping negative. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

let float t ~bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v /. 9007199254740992. *. bound (* 2^53 *)

let uniform t ~lo ~hi = lo +. float t ~bound:(hi -. lo)

let gaussian t ~mu ~sigma =
  let rec u () =
    let x = float t ~bound:1. in
    if x > 0. then x else u ()
  in
  let u1 = u () and u2 = float t ~bound:1. in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
