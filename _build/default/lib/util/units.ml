let kib = 1024
let mib = 1024 * 1024
let gib = 1024 * 1024 * 1024

let kb = 1_000
let mb = 1_000_000
let gb = 1_000_000_000
let tb = 1_000_000_000_000

let giga = 1e9
let tera = 1e12
let peta = 1e15

let bytes_per_cycle_of_gbps ~bandwidth_gb_s ~frequency_ghz =
  bandwidth_gb_s /. frequency_ghz

let gbps_of_bytes_per_cycle ~bytes_per_cycle ~frequency_ghz =
  bytes_per_cycle *. frequency_ghz

let seconds_of_cycles ~cycles ~frequency_ghz =
  float_of_int cycles /. (frequency_ghz *. giga)

let pp_scaled ~scales ~unit ppf v =
  let rec pick v = function
    | [] -> (v, "")
    | (factor, suffix) :: rest ->
      if Float.abs v >= factor then (v /. factor, suffix) else pick v rest
  in
  let v', suffix = pick v scales in
  if Float.abs v' >= 100. then Format.fprintf ppf "%.0f %s%s" v' suffix unit
  else if Float.abs v' >= 10. then Format.fprintf ppf "%.1f %s%s" v' suffix unit
  else Format.fprintf ppf "%.2f %s%s" v' suffix unit

let binary_scales =
  [ (1024. ** 4., "TiB"); (1024. ** 3., "GiB"); (1024. ** 2., "MiB"); (1024., "KiB") ]

let pp_bytes ppf n =
  let v = float_of_int n in
  if Float.abs v < 1024. then Format.fprintf ppf "%d B" n
  else
    let rec pick v = function
      | [] -> Format.fprintf ppf "%d B" n
      | (factor, suffix) :: rest ->
        if Float.abs v >= factor then Format.fprintf ppf "%.1f %s" (v /. factor) suffix
        else pick v rest
    in
    pick v binary_scales

let decimal_scales = [ (1e15, "P"); (1e12, "T"); (1e9, "G"); (1e6, "M"); (1e3, "K") ]

let pp_rate ppf v = pp_scaled ~scales:decimal_scales ~unit:"B/s" ppf v

let pp_flops ppf v =
  pp_scaled ~scales:decimal_scales ~unit:"FLOPS" ppf v

let pp_seconds ppf v =
  if Float.abs v >= 1. then Format.fprintf ppf "%.2f s" v
  else if Float.abs v >= 1e-3 then Format.fprintf ppf "%.2f ms" (v *. 1e3)
  else if Float.abs v >= 1e-6 then Format.fprintf ppf "%.2f us" (v *. 1e6)
  else Format.fprintf ppf "%.1f ns" (v *. 1e9)
