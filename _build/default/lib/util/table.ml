type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  header : string list;
  width : int;
  mutable rows : row list; (* reversed *)
}

let create ?title ~header () =
  if header = [] then invalid_arg "Table.create: empty header";
  { title; header; width = List.length header; rows = [] }

let add_row t cells =
  if List.length cells <> t.width then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d" t.width
         (List.length cells));
  t.rows <- Cells cells :: t.rows

let add_rows t rows = List.iter (add_row t) rows
let add_separator t = t.rows <- Separator :: t.rows

let render ?(align = Right) t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.header) in
  let update cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter (function Cells c -> update c | Separator -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad i s =
    let w = widths.(i) in
    let n = w - String.length s in
    if n <= 0 then s
    else
      match align with
      | Right -> String.make n ' ' ^ s
      | Left -> s ^ String.make n ' '
  in
  let pad_header i s =
    let w = widths.(i) in
    let n = w - String.length s in
    if n <= 0 then s else s ^ String.make n ' '
  in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line pad cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad i c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  rule ();
  line pad_header t.header;
  rule ();
  List.iter (function Cells c -> line pad c | Separator -> rule ()) rows;
  rule ();
  Buffer.contents buf

let print ?align t = print_string (render ?align t)

let cell_float ?(decimals = 2) v =
  let a = Float.abs v in
  if v <> v then "nan"
  else if a <> 0. && (a >= 1e9 || a < 1e-4) then Printf.sprintf "%.3g" v
  else Printf.sprintf "%.*f" decimals v

let cell_int = string_of_int
let cell_ratio v = Printf.sprintf "%.2fx" v
