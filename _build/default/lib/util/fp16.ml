type t = int

let bits h = h land 0xffff
let of_bits b = b land 0xffff

let positive_infinity = 0x7c00
let negative_infinity = 0xfc00
let zero = 0x0000
let one = 0x3c00

let max_value = 65504.
let min_positive_subnormal = 5.9604644775390625e-08 (* 2^-24 *)
let min_positive_normal = 6.103515625e-05 (* 2^-14 *)
let epsilon = 0.0009765625 (* 2^-10 *)

let is_nan h =
  let h = bits h in
  h land 0x7c00 = 0x7c00 && h land 0x03ff <> 0

let is_inf h =
  let h = bits h in
  h land 0x7fff = 0x7c00

let is_subnormal h =
  let h = bits h in
  h land 0x7c00 = 0 && h land 0x03ff <> 0

let neg h = bits h lxor 0x8000

(* Conversion via the binary32 bit pattern: decompose the float's sign,
   exponent and mantissa, then re-round the 23-bit mantissa to 10 bits with
   round-to-nearest-even, handling subnormal and overflow ranges. *)
let of_float x =
  let b32 = Int32.bits_of_float x in
  let b = Int32.to_int (Int32.shift_right_logical b32 16) land 0xffff in
  let sign = b land 0x8000 in
  let b32 = Int32.to_int (Int32.logand b32 0x7fffffffl) in
  let exp32 = b32 lsr 23 in
  let mant32 = b32 land 0x7fffff in
  if exp32 = 0xff then
    (* inf or nan: keep a quiet-nan payload bit if any mantissa bit set *)
    if mant32 = 0 then sign lor 0x7c00 else sign lor 0x7e00
  else
    (* unbiased exponent *)
    let e = exp32 - 127 in
    if e > 15 then
      (* |x| >= 65536 always overflows; 65504 < |x| < 65536 has e = 15 and
         overflows through the rounding carry in the branch below *)
      sign lor 0x7c00
    else if e >= -14 then (
      (* normal fp16 range: round 23-bit mantissa to 10 bits *)
      let exp16 = e + 15 in
      let shift = 13 in
      let mant = mant32 lsr shift in
      let rem = mant32 land ((1 lsl shift) - 1) in
      let half = 1 lsl (shift - 1) in
      let mant =
        if rem > half || (rem = half && mant land 1 = 1) then mant + 1
        else mant
      in
      (* mantissa carry can bump the exponent (and possibly overflow) *)
      let v = (exp16 lsl 10) + mant in
      if v >= 0x7c00 then sign lor 0x7c00 else sign lor v)
    else if e >= -25 then (
      (* subnormal fp16: implicit leading 1 becomes explicit, shifted right *)
      let mant32 = mant32 lor 0x800000 in
      let shift = 13 + (-14 - e) in
      if shift >= 32 then sign
      else
        let mant = mant32 lsr shift in
        let rem = mant32 land ((1 lsl shift) - 1) in
        let half = 1 lsl (shift - 1) in
        let mant =
          if rem > half || (rem = half && mant land 1 = 1) then mant + 1
          else mant
        in
        sign lor mant)
    else (* underflow to signed zero *) sign

let to_float h =
  let h = bits h in
  let sign = if h land 0x8000 <> 0 then -1. else 1. in
  let exp = (h lsr 10) land 0x1f in
  let mant = h land 0x3ff in
  if exp = 0x1f then
    if mant = 0 then sign *. infinity else nan
  else if exp = 0 then sign *. float_of_int mant *. 0x1p-24
  else sign *. (float_of_int (mant lor 0x400)) *. (2. ** float_of_int (exp - 25))

let round_float x = to_float (of_float x)
