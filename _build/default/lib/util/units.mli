(** Unit conversions and human-readable formatting for the quantities the
    paper reasons in: bytes, bandwidths, FLOPS, frequencies, energy. *)

val kib : int
val mib : int
val gib : int

val kb : int
(** 10^3 bytes — the paper quotes bandwidths in decimal units. *)

val mb : int
val gb : int
val tb : int

val giga : float
val tera : float
val peta : float

val bytes_per_cycle_of_gbps : bandwidth_gb_s:float -> frequency_ghz:float -> float
(** Convert a bandwidth in GB/s into bytes per clock cycle at a core
    frequency in GHz.  E.g. 4 TB/s at 1 GHz is 4096 B/cycle. *)

val gbps_of_bytes_per_cycle : bytes_per_cycle:float -> frequency_ghz:float -> float

val seconds_of_cycles : cycles:int -> frequency_ghz:float -> float

val pp_bytes : Format.formatter -> int -> unit
(** Binary-scaled, e.g. "64 KiB", "1.0 MiB". *)

val pp_rate : Format.formatter -> float -> unit
(** Decimal-scaled per-second rate, e.g. "1.2 TB/s" for bytes,
    "8.0 T" for FLOPS (caller appends the unit name). *)

val pp_flops : Format.formatter -> float -> unit
(** e.g. "256.0 TFLOPS". *)

val pp_seconds : Format.formatter -> float -> unit
(** e.g. "1.81 ms", "83 s". *)
