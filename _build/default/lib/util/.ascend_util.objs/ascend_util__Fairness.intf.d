lib/util/fairness.mli:
