lib/util/fp16.mli:
