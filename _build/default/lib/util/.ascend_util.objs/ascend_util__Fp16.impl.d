lib/util/fp16.ml: Int32
