lib/util/stats.mli:
