lib/util/fairness.ml: Array
