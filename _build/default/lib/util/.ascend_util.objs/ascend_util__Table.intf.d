lib/util/table.mli:
