lib/util/prng.mli:
