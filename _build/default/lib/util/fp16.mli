(** IEEE 754 binary16 (half precision) encode/decode.

    The Ascend cube unit consumes fp16 sources and produces fp32
    destinations (paper §2.1).  This codec lets the numeric executor and
    the quantisation pipeline round values through fp16 exactly as the
    hardware datapath would. *)

type t = int
(** A half-precision value stored in the low 16 bits of an [int]. *)

val of_float : float -> t
(** Round a double to the nearest half-precision value (round to nearest,
    ties to even), with overflow to infinity and subnormal support. *)

val to_float : t -> float
(** Exact widening conversion. *)

val round_float : float -> float
(** [round_float x] is [to_float (of_float x)]: the value [x] takes after
    passing through an fp16 register. *)

val is_nan : t -> bool
val is_inf : t -> bool
val is_subnormal : t -> bool

val neg : t -> t

val positive_infinity : t
val negative_infinity : t
val zero : t
val one : t

val max_value : float
(** Largest finite fp16 value, 65504. *)

val min_positive_subnormal : float
val min_positive_normal : float

val epsilon : float
(** Machine epsilon of fp16, [2. ** -10.]. *)

val bits : t -> int
(** Raw bit pattern, masked to 16 bits. *)

val of_bits : int -> t
