(** The autonomous-driving SoC (Ascend 610, paper §3.3): Ascend cores
    with int4/int8 low-precision inference, a Vector Core for SLAM-class
    workloads, MPAM + QoS bandwidth partitioning for bounded latency, a
    DVPP front end, and a separate ASIL-D ring for the safety CPUs. *)

type t = {
  soc_name : string;
  core : Ascend_arch.Config.t;
  cores : int;
  vector_cores : int;      (** Ascend cores without the cube (§3.3) *)
  dram : Ascend_memory.Dram.t;
  dvpp : Dvpp.t;
  safety_ring : Ascend_noc.Ring.t;
  mpam_classes : Ascend_memory.Mpam.class_spec list;
  tdp_w : float;
}

val ascend610 : t

val peak_tops : t -> precision:Ascend_arch.Precision.t -> float

type service_result = {
  model_name : string;
  compute_s : float;        (** core-side time per frame *)
  memory_s : float;         (** external-traffic time at granted bandwidth *)
  dvpp_s : float;
  end_to_end_s : float;
  granted_bandwidth : float;
  deadline_s : float;
  met_deadline : bool;
}

val run_service :
  ?with_mpam:bool -> t ->
  models:(string * Ascend_nn.Graph.t * float) list ->
  background_demand:float ->
  (service_result list, string) result
(** Simulate the perception service: each (name, graph, deadline) model
    runs on its own core every frame while [background_demand] bytes/s of
    non-critical traffic (logging, map updates) competes for DRAM.
    [with_mpam] (default true) applies the SoC's MPAM partitions;
    without it, bandwidth is shared max-min and latency degrades — the
    §3.3 experiment. *)

val worst_case_cpu_latency_ns : t -> float
(** The ASIL-D ring bound. *)
