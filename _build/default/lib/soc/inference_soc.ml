module Config = Ascend_arch.Config
module Engine = Ascend_compiler.Engine

type t = {
  soc_name : string;
  core : Config.t;
  cores : int;
  dram : Ascend_memory.Dram.t;
  dvpp : Dvpp.t;
  tdp_w : float;
}

let ascend310 =
  {
    soc_name = "Ascend 310";
    core = Config.mini;
    cores = 2;
    dram = Ascend_memory.Dram.lpddr4_mobile;
    dvpp =
      { Dvpp.ascend910_dvpp with Dvpp.dvpp_name = "DVPP-310";
        decode_channels = 16; power_w = 1.5 };
    tdp_w = 8.;
  }

let peak_tops t ~precision =
  float_of_int t.cores *. Config.peak_flops t.core ~precision /. 1e12

type result = {
  latency_s : float;
  throughput_per_s : float;
  power_w : float;
  video_channels : int;
}

let run t graph =
  match Engine.run_inference t.core graph with
  | Error _ as e -> e
  | Ok r ->
    let latency_s = Engine.seconds r in
    let per_core = if latency_s > 0. then 1. /. latency_s else 0. in
    let throughput = per_core *. float_of_int t.cores in
    let compute_channels = int_of_float (throughput /. 30.) in
    let decode_channels = t.dvpp.Dvpp.decode_channels in
    Ok
      {
        latency_s;
        throughput_per_s = throughput;
        power_w =
          (float_of_int t.cores *. Engine.average_power_w r)
          +. t.dvpp.Dvpp.power_w +. 1.0 (* uncore *);
        video_channels = min compute_channels decode_channels;
      }
