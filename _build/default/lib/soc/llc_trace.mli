(** Trace-driven LLC evaluation: drive the set-associative cache model
    with the actual address stream a compiled network produces —
    parameters are resident at planner-assigned offsets, activations
    live in the liveness-packed region — and measure hit rates across
    capacities.  This grounds the §4.1 capacity experiment in a real
    cache rather than the analytic working-set fraction. *)

type sweep_point = {
  capacity_bytes : int;
  hit_rate : float;
  hits : int;
  misses : int;
}

val address_footprint_bytes : Ascend_nn.Graph.t -> int
(** Weights + packed activation region. *)

val sweep :
  ?line_bytes:int -> ?passes:int -> Ascend_nn.Graph.t ->
  capacities:int list -> sweep_point list
(** For each capacity, replay [passes] (default 2) full inference passes
    — per node in topological order: read the weights, read the inputs,
    write the output — and report the steady hit rate (statistics reset
    after the cold first pass). *)
