module Config = Ascend_arch.Config
module Precision = Ascend_arch.Precision
module Engine = Ascend_compiler.Engine
module Silicon = Ascend_arch.Silicon

type dvfs_point = {
  point_name : string;
  frequency_ghz : float;
  voltage_v : float;
}

type t = {
  soc_name : string;
  big : Config.t;
  big_count : int;
  little : Config.t;
  dvfs : dvfs_point list;
  dram : Ascend_memory.Dram.t;
}

let kirin990 =
  {
    soc_name = "Kirin 990-5G";
    big = Config.lite;
    big_count = 2;
    little = Config.tiny;
    dvfs =
      [
        { point_name = "low"; frequency_ghz = 0.4; voltage_v = 0.6 };
        { point_name = "nominal"; frequency_ghz = 0.75; voltage_v = 0.75 };
        { point_name = "boost"; frequency_ghz = 0.96; voltage_v = 0.85 };
      ];
    dram = Ascend_memory.Dram.lpddr4_mobile;
  }

let peak_tops t =
  (float_of_int t.big_count
   *. Config.peak_flops t.big ~precision:Precision.Int8
  +. Config.peak_flops t.little ~precision:Precision.Int8)
  /. 1e12

let npu_area_mm2 t =
  (float_of_int t.big_count *. Silicon.core_area_mm2 t.big)
  +. Silicon.core_area_mm2 t.little

type inference = {
  point : dvfs_point;
  core_result : Engine.network_result;
  latency_s : float;
  average_power_w : float;
  energy_per_inference_j : float;
  tops_per_watt : float;
}

let nominal t =
  match List.find_opt (fun p -> p.point_name = "nominal") t.dvfs with
  | Some p -> p
  | None -> List.hd t.dvfs

let dvfs_scale ~nominal p =
  p.frequency_ghz *. p.voltage_v *. p.voltage_v
  /. (nominal.frequency_ghz *. nominal.voltage_v *. nominal.voltage_v)

let find_point t name =
  match List.find_opt (fun p -> p.point_name = name) t.dvfs with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "Mobile_soc: unknown DVFS point %s" name)

let finish t ~core ~point result =
  let nom = nominal t in
  let scaled_core = { core with Config.frequency_ghz = point.frequency_ghz } in
  ignore scaled_core;
  (* the simulation ran at the core's nominal frequency; rescale time by
     frequency and dynamic power by f*V^2 *)
  let nominal_latency = Engine.seconds result in
  let latency_s = nominal_latency *. (nom.frequency_ghz /. point.frequency_ghz) in
  let nominal_power = Engine.average_power_w result in
  let average_power_w = nominal_power *. dvfs_scale ~nominal:nom point in
  (* peak throughput scales with the operating frequency *)
  let peak_at_point =
    peak_tops t /. float_of_int t.big_count
    *. (point.frequency_ghz /. nom.frequency_ghz)
  in
  {
    point;
    core_result = result;
    latency_s;
    average_power_w;
    energy_per_inference_j = average_power_w *. latency_s;
    tops_per_watt = peak_at_point /. average_power_w;
  }

let run_big ?sparsity ?(point = "nominal") t graph =
  match find_point t point with
  | Error _ as e -> e
  | Ok p -> (
    let options =
      match sparsity with
      | Some ratio ->
        { Ascend_compiler.Codegen.default_options with weight_sparsity = Some ratio }
      | None -> Ascend_compiler.Codegen.default_options
    in
    match Engine.run_inference ~options t.big graph with
    | Error _ as e -> e
    | Ok r -> Ok (finish t ~core:t.big ~point:p r))

let run_little t graph =
  let p = nominal t in
  match Engine.run_inference t.little graph with
  | Error _ as e -> e
  | Ok r ->
    let latency_s = Engine.seconds r in
    let average_power_w = Engine.average_power_w r in
    Ok
      {
        point = p;
        core_result = r;
        latency_s;
        average_power_w;
        energy_per_inference_j = average_power_w *. latency_s;
        tops_per_watt =
          Config.peak_flops t.little ~precision:Precision.Int8 /. 1e12
          /. average_power_w;
      }

let batch1_cube_utilization (core : Config.t) ~m ~k ~n =
  let d = core.cube in
  let div = Ascend_util.Stats.divide_round_up in
  let cycles = div m d.m * div k d.k * div n d.n in
  let macs = m * k * n in
  float_of_int macs /. float_of_int (cycles * d.m * d.k * d.n)
