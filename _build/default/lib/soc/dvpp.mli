(** Digital Vision Pre-Processor (paper §3.1.2, §3.3): the fixed-function
    front end that decodes and resizes camera/video streams so frames
    arrive at the AI cores already in tensor form.  Modeled as a
    fixed-throughput pipeline stage. *)

type t = {
  dvpp_name : string;
  decode_channels : int;        (** concurrent full-HD decode streams *)
  decode_fps_per_channel : float;  (** sustained stream rate per channel *)
  decode_pixels_per_s : float;     (** single-frame decode speed *)
  resize_pixels_per_s : float;
  power_w : float;
}

val ascend910_dvpp : t
(** 128-channel full-HD decoder. *)

val automotive_dvpp : t
(** 16 camera channels with resize and 360-degree stitch throughput. *)

val decode_latency_s : ?width:int -> ?height:int -> t -> float
(** Latency to decode one frame (default 1920x1080). *)

val resize_latency_s : t -> width:int -> height:int -> float

val frame_latency_s : t -> width:int -> height:int -> float
(** decode + resize for one frame. *)

val max_camera_fps : t -> cameras:int -> float
(** Sustainable per-camera rate when [cameras] streams share the DVPP. *)
