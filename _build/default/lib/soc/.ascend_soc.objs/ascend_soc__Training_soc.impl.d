lib/soc/training_soc.ml: Ascend_arch Ascend_compiler Ascend_core_sim Ascend_isa Ascend_memory Ascend_noc Ascend_util Float Format List
