lib/soc/llc_trace.ml: Ascend_compiler Ascend_memory Ascend_nn Ascend_tensor Hashtbl List
