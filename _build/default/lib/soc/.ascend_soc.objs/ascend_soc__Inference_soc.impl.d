lib/soc/inference_soc.ml: Ascend_arch Ascend_compiler Ascend_memory Dvpp
