lib/soc/dvpp.ml:
