lib/soc/automotive_soc.mli: Ascend_arch Ascend_memory Ascend_nn Ascend_noc Dvpp
