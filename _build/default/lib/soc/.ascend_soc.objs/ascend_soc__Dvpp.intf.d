lib/soc/dvpp.mli:
