lib/soc/mobile_soc.ml: Ascend_arch Ascend_compiler Ascend_memory Ascend_util List Printf
