lib/soc/llc_trace.mli: Ascend_nn
