lib/soc/mobile_soc.mli: Ascend_arch Ascend_compiler Ascend_memory Ascend_nn
