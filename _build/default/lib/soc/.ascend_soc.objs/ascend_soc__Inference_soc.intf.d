lib/soc/inference_soc.mli: Ascend_arch Ascend_memory Ascend_nn Dvpp Stdlib
