lib/soc/automotive_soc.ml: Array Ascend_arch Ascend_compiler Ascend_core_sim Ascend_isa Ascend_memory Ascend_noc Ascend_util Dvpp Float List Printf
