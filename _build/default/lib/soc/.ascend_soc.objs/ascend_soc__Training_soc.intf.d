lib/soc/training_soc.mli: Ascend_arch Ascend_compiler Ascend_memory Ascend_nn Ascend_noc Format Stdlib
