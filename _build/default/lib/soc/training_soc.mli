(** The DNN-training SoC (Ascend 910, paper §3.1 and Figure 10/12):
    32 Ascend-Max cores on a 6x4 mesh with an on-die LLC, four HBM
    stacks (1.2 TB/s), 16 CPU cores and a 128-channel DVPP.

    Execution model: a (training or inference) batch is split data-
    parallel across the cores at block level; one core is simulated
    cycle-approximately for its batch slice, then chip-level slowdowns
    are applied for LLC misses spilling to HBM and for mesh congestion. *)

type t = {
  soc_name : string;
  core : Ascend_arch.Config.t;
  cores : int;
  llc_bytes : int;
  llc_bandwidth : float;       (** total bytes/s to LLC (4 TB/s) *)
  hbm : Ascend_memory.Dram.t;
  mesh : Ascend_noc.Mesh.t;
  cpu_cores : int;
  uncore_power_w : float;
  io_die_area_mm2 : float;
}

val ascend910 : t
val ascend910_llc : llc_bytes:int -> t
(** Capacity-sweep variant for the §4.1 3D-SRAM experiment. *)

type result = {
  soc : t;
  per_core : Ascend_compiler.Engine.network_result;
  cores_used : int;
  batch : int;
  hbm_slowdown : float;
  noc_slowdown : float;
  llc_hit_fraction : float;
  step_seconds : float;
  chip_power_w : float;
  throughput_per_s : float;  (** batch items per second *)
}

val run :
  ?training:bool -> t -> build:(batch:int -> Ascend_nn.Graph.t) ->
  batch:int -> (result, string) Stdlib.result
(** [build] constructs the graph at a given batch size; the SoC splits
    [batch] evenly across cores (batch must divide; a partial last core
    is modelled by rounding the per-core batch up). *)

val peak_flops : t -> precision:Ascend_arch.Precision.t -> float
val compute_die_area_mm2 : t -> float
val pp_result : Format.formatter -> result -> unit
