type t = {
  dvpp_name : string;
  decode_channels : int;
  decode_fps_per_channel : float;
  decode_pixels_per_s : float;  (* per-frame decode speed of one channel *)
  resize_pixels_per_s : float;
  power_w : float;
}

let ascend910_dvpp =
  { dvpp_name = "DVPP-910"; decode_channels = 128;
    decode_fps_per_channel = 30.; decode_pixels_per_s = 1e9;
    resize_pixels_per_s = 4e9; power_w = 8. }

let automotive_dvpp =
  { dvpp_name = "DVPP-610"; decode_channels = 16;
    decode_fps_per_channel = 30.; decode_pixels_per_s = 1e9;
    resize_pixels_per_s = 2e9; power_w = 4. }

let decode_latency_s ?(width = 1920) ?(height = 1080) t =
  float_of_int (width * height) /. t.decode_pixels_per_s

let resize_latency_s t ~width ~height =
  if width <= 0 || height <= 0 then
    invalid_arg "Dvpp.resize_latency_s: empty frame";
  float_of_int (width * height) /. t.resize_pixels_per_s

let frame_latency_s t ~width ~height =
  decode_latency_s ~width ~height t +. resize_latency_s t ~width ~height

let max_camera_fps t ~cameras =
  if cameras <= 0 then invalid_arg "Dvpp.max_camera_fps: no cameras";
  if cameras <= t.decode_channels then t.decode_fps_per_channel
  else
    t.decode_fps_per_channel *. float_of_int t.decode_channels
    /. float_of_int cameras
