module Graph = Ascend_nn.Graph
module Op = Ascend_nn.Op
module Shape = Ascend_tensor.Shape
module Planner = Ascend_compiler.Memory_planner
module Llc = Ascend_memory.Llc

type sweep_point = {
  capacity_bytes : int;
  hit_rate : float;
  hits : int;
  misses : int;
}

type layout = {
  weight_base : (int, int * int) Hashtbl.t; (* node id -> (addr, bytes) *)
  activation_base : int; (* offset of the packed activation region *)
  plan : Planner.plan;
  total : int;
}

let layout_of g =
  let plan = Planner.plan g in
  let weight_base = Hashtbl.create 32 in
  let cursor = ref 0 in
  List.iter
    (fun (n : Graph.node) ->
      match n.Graph.inputs with
      | [ x ] -> (
        match Op.weight_shape n.Graph.op ~input:(Graph.find g x).Graph.out_shape with
        | Some ws ->
          let bytes = Shape.bytes ws ~dtype:n.Graph.dtype in
          Hashtbl.replace weight_base n.Graph.id (!cursor, bytes);
          cursor := !cursor + bytes
        | None -> ())
      | _ -> ())
    (Graph.nodes g);
  let activation_base = !cursor in
  {
    weight_base;
    activation_base;
    plan;
    total = !cursor + plan.Planner.peak_bytes;
  }

let address_footprint_bytes g = (layout_of g).total

let activation_range layout id =
  match
    List.find_opt
      (fun (a : Planner.allocation) -> a.Planner.node_id = id)
      layout.plan.Planner.allocations
  with
  | Some a ->
    (layout.activation_base + a.Planner.offset, a.Planner.size_bytes)
  | None -> (layout.activation_base, 0)

let one_pass cache g layout =
  List.iter
    (fun (n : Graph.node) ->
      (match Hashtbl.find_opt layout.weight_base n.Graph.id with
      | Some (addr, bytes) when bytes > 0 ->
        ignore (Llc.access_range cache ~addr ~bytes ~write:false)
      | _ -> ());
      List.iter
        (fun input ->
          let addr, bytes = activation_range layout input in
          if bytes > 0 then
            ignore (Llc.access_range cache ~addr ~bytes ~write:false))
        n.Graph.inputs;
      let addr, bytes = activation_range layout n.Graph.id in
      if bytes > 0 then
        ignore (Llc.access_range cache ~addr ~bytes ~write:true))
    (Graph.nodes g)

let sweep ?(line_bytes = 128) ?(passes = 2) g ~capacities =
  if passes < 1 then invalid_arg "Llc_trace.sweep: need at least one pass";
  let layout = layout_of g in
  List.map
    (fun capacity_bytes ->
      let cache = Llc.create ~line_bytes ~capacity_bytes () in
      (* cold pass(es), then measure the steady state *)
      for _ = 1 to passes - 1 do
        one_pass cache g layout
      done;
      Llc.reset_stats cache;
      one_pass cache g layout;
      let stats = Llc.stats cache in
      {
        capacity_bytes;
        hit_rate = Llc.hit_rate cache;
        hits = stats.Llc.hits;
        misses = stats.Llc.misses;
      })
    capacities
