module Config = Ascend_arch.Config
module Engine = Ascend_compiler.Engine
module Simulator = Ascend_core_sim.Simulator
module Buffer_id = Ascend_isa.Buffer_id
module Mpam = Ascend_memory.Mpam

type t = {
  soc_name : string;
  core : Config.t;
  cores : int;
  vector_cores : int;
  dram : Ascend_memory.Dram.t;
  dvpp : Dvpp.t;
  safety_ring : Ascend_noc.Ring.t;
  mpam_classes : Mpam.class_spec list;
  tdp_w : float;
}

let ascend610 =
  {
    soc_name = "Ascend 610";
    core = Config.standard;
    cores = 10;
    vector_cores = 2;
    dram = Ascend_memory.Dram.lpddr5_automotive;
    dvpp = Dvpp.automotive_dvpp;
    safety_ring = Ascend_noc.Ring.create ~nodes:8 ();
    mpam_classes =
      [
        { Mpam.class_name = "perception"; min_share = 0.55; max_share = 0.85;
          priority = 3 };
        { Mpam.class_name = "slam"; min_share = 0.2; max_share = 0.5;
          priority = 2 };
        { Mpam.class_name = "background"; min_share = 0.05; max_share = 0.3;
          priority = 1 };
      ];
    tdp_w = 65.;
  }

let peak_tops t ~precision =
  float_of_int t.cores *. Config.peak_flops t.core ~precision /. 1e12

type service_result = {
  model_name : string;
  compute_s : float;
  memory_s : float;
  dvpp_s : float;
  end_to_end_s : float;
  granted_bandwidth : float;
  deadline_s : float;
  met_deadline : bool;
}

let external_traffic (r : Engine.network_result) =
  List.fold_left
    (fun acc (l : Engine.layer_result) ->
      let t = Simulator.traffic l.report Buffer_id.External in
      acc + t.read_bytes + t.written_bytes)
    0 r.layers

let class_named t name =
  match
    List.find_opt (fun (c : Mpam.class_spec) -> c.class_name = name)
      t.mpam_classes
  with
  | Some c -> c
  | None -> invalid_arg ("Automotive_soc: no MPAM class " ^ name)

let run_service ?(with_mpam = true) t ~models ~background_demand =
  if background_demand < 0. then
    invalid_arg "Automotive_soc.run_service: negative background demand";
  if List.length models > t.cores then
    Error "more perception models than cores"
  else
    (* simulate each model on its own core *)
    let rec sim acc = function
      | [] -> Ok (List.rev acc)
      | (name, graph, deadline) :: rest -> (
        match Engine.run_inference t.core graph with
        | Error e -> Error (Printf.sprintf "%s: %s" name e)
        | Ok r -> sim ((name, r, deadline) :: acc) rest)
    in
    match sim [] models with
    | Error e -> Error e
    | Ok sims ->
      let total_bw = Ascend_memory.Dram.total_bandwidth t.dram in
      (* perception demand: traffic over the frame's compute time *)
      let demands =
        List.map
          (fun (_, r, _) ->
            let s = Engine.seconds r in
            if s <= 0. then 0. else float_of_int (external_traffic r) /. s)
          sims
      in
      let perception_demand = List.fold_left ( +. ) 0. demands in
      let perception_grant =
        if with_mpam then begin
          let allocs =
            Mpam.partition ~total_bandwidth:total_bw
              [
                (class_named t "perception", perception_demand);
                (class_named t "slam", 0.1 *. total_bw);
                (class_named t "background", background_demand);
              ]
          in
          (List.find
             (fun (a : Mpam.allocation) -> a.spec.class_name = "perception")
             allocs)
            .granted
        end
        else begin
          (* no partitioning: max-min fair among all requestors *)
          let all =
            Array.of_list (perception_demand :: (0.1 *. total_bw) :: [ background_demand ])
          in
          (Ascend_util.Fairness.max_min_fair ~capacity:total_bw ~demands:all).(0)
        end
      in
      let share_of_grant =
        if perception_demand <= 0. then fun _ -> 0.
        else fun d -> perception_grant *. (d /. perception_demand)
      in
      Ok
        (List.map2
           (fun (name, r, deadline) demand ->
             let compute_s = Engine.seconds r in
             let granted = share_of_grant demand in
             let bytes = float_of_int (external_traffic r) in
             (* the core simulation already charges external transfers at
                full port speed; the penalty here is only the slowdown of
                a squeezed bandwidth grant: bytes/granted - bytes/demand *)
             let memory_s =
               if demand <= 0. then 0.
               else if granted <= 0. then 50. *. compute_s
               else Float.max 0. ((bytes /. granted) -. (bytes /. demand))
             in
             let dvpp_s = Dvpp.frame_latency_s t.dvpp ~width:1920 ~height:1080 in
             let end_to_end_s = compute_s +. memory_s +. dvpp_s in
             {
               model_name = name;
               compute_s;
               memory_s;
               dvpp_s;
               end_to_end_s;
               granted_bandwidth = granted;
               deadline_s = deadline;
               met_deadline = end_to_end_s <= deadline;
             })
           sims demands)

let worst_case_cpu_latency_ns t =
  Ascend_noc.Ring.worst_case_latency_ns t.safety_ring
