(** The mobile AI subsystem (Kirin 990-5G, paper §3.2 / Figure 13):
    two Ascend-Lite cores and one Ascend-Tiny core in a big-little
    arrangement, with DVFS and the structured-sparsity decompression
    path.

    Big-little policy: heavyweight vision models (MobileNet / ResNet
    class) run on a Lite core; the always-on wake-up networks (face /
    gesture) run on the Tiny core inside its 300 mW envelope. *)

type dvfs_point = {
  point_name : string;
  frequency_ghz : float;
  voltage_v : float;
}

type t = {
  soc_name : string;
  big : Ascend_arch.Config.t;
  big_count : int;
  little : Ascend_arch.Config.t;
  dvfs : dvfs_point list;     (** for the big cores; nominal is 0.75 GHz *)
  dram : Ascend_memory.Dram.t;
}

val kirin990 : t

val peak_tops : t -> float
(** int8 TOPS across all NPU cores — the Table 8 "Peak Performance". *)

val npu_area_mm2 : t -> float

type inference = {
  point : dvfs_point;
  core_result : Ascend_compiler.Engine.network_result;
  latency_s : float;
  average_power_w : float;
  energy_per_inference_j : float;
  tops_per_watt : float;   (** peak int8 TOPS over power at this point *)
}

val run_big :
  ?sparsity:float -> ?point:string -> t -> Ascend_nn.Graph.t ->
  (inference, string) result
(** Run a batch-1 graph on one Lite core at the named DVFS point
    (default nominal).  [sparsity] enables weight decompression with the
    given compressed/uncompressed ratio. *)

val run_little :
  t -> Ascend_nn.Graph.t -> (inference, string) result
(** Run an int8 always-on network on the Tiny core. *)

val dvfs_scale : nominal:dvfs_point -> dvfs_point -> float
(** Dynamic-power ratio f*V^2 / f0*V0^2. *)

val batch1_cube_utilization :
  Ascend_arch.Config.t -> m:int -> k:int -> n:int -> float
(** MAC utilisation of one cube instruction on an m-row GEMM fragment —
    the §3.2 argument for the Lite core's 4x16x16 cube at batch 1. *)
