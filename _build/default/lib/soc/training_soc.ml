module Config = Ascend_arch.Config
module Silicon = Ascend_arch.Silicon
module Engine = Ascend_compiler.Engine
module Simulator = Ascend_core_sim.Simulator
module Buffer_id = Ascend_isa.Buffer_id

type t = {
  soc_name : string;
  core : Config.t;
  cores : int;
  llc_bytes : int;
  llc_bandwidth : float;
  hbm : Ascend_memory.Dram.t;
  mesh : Ascend_noc.Mesh.t;
  cpu_cores : int;
  uncore_power_w : float;
  io_die_area_mm2 : float;
}

let ascend910 =
  {
    soc_name = "Ascend 910";
    core = Config.max;
    cores = 32;
    llc_bytes = 32 * Ascend_util.Units.mib;
    llc_bandwidth = 4e12;
    hbm = Ascend_memory.Dram.hbm2_ascend910;
    mesh = Ascend_noc.Mesh.ascend910;
    cpu_cores = 16;
    uncore_power_w = 60.;
    io_die_area_mm2 = 168.;
  }

let ascend910_llc ~llc_bytes = { ascend910 with llc_bytes }

type result = {
  soc : t;
  per_core : Engine.network_result;
  cores_used : int;
  batch : int;
  hbm_slowdown : float;
  noc_slowdown : float;
  llc_hit_fraction : float;
  step_seconds : float;
  chip_power_w : float;
  throughput_per_s : float;
}

let external_traffic (r : Engine.network_result) =
  List.fold_left
    (fun acc (l : Engine.layer_result) ->
      let t = Simulator.traffic l.report Buffer_id.External in
      acc + t.read_bytes + t.written_bytes)
    0 r.layers

let run ?(training = false) t ~build ~batch =
  if batch <= 0 then invalid_arg "Training_soc.run: non-positive batch";
  let cores_used = min t.cores batch in
  let per_core_batch = Ascend_util.Stats.divide_round_up batch cores_used in
  let graph = build ~batch:per_core_batch in
  let run_engine =
    if training then Engine.run_training else Engine.run_inference
  in
  match run_engine t.core graph with
  | Error e -> Error e
  | Ok per_core ->
    let core_seconds = Engine.seconds per_core in
    (* LLC: weights are shared across cores; activations are per-core.
       The resident working set competing for LLC capacity is the weight
       footprint plus every core's activation high-water mark. *)
    let plan = Ascend_compiler.Memory_planner.plan graph in
    let working_set =
      plan.Ascend_compiler.Memory_planner.weight_bytes
      + (cores_used * plan.Ascend_compiler.Memory_planner.peak_bytes)
    in
    let llc_hit_fraction =
      Ascend_memory.Llc.hit_fraction ~capacity_bytes:t.llc_bytes
        ~working_set_bytes:working_set
    in
    let ext_bytes = external_traffic per_core in
    let demand_rate core_s =
      if core_s <= 0. then 0.
      else float_of_int (ext_bytes * cores_used) /. core_s
    in
    let rate = demand_rate core_seconds in
    (* traffic missing in the LLC spills to HBM *)
    let hbm_demand = rate *. (1. -. llc_hit_fraction) in
    let hbm_slowdown =
      Float.max 1. (hbm_demand /. Ascend_memory.Dram.total_bandwidth t.hbm)
    in
    let llc_slowdown = Float.max 1. (rate /. t.llc_bandwidth) in
    (* mesh congestion under uniform core->LLC traffic *)
    let noc_capacity =
      Ascend_noc.Mesh.saturation_injection_rate t.mesh ~uniform_random:true
    in
    let noc_slowdown = Float.max 1. (rate /. noc_capacity) in
    let slowdown = Float.max (Float.max hbm_slowdown llc_slowdown) noc_slowdown in
    let step_seconds = core_seconds *. slowdown in
    (* power: cores at their simulated average + uncore + HBM traffic *)
    let core_power = Engine.average_power_w per_core in
    let hbm_power =
      (* ~7.5 pJ/B for HBM2 accesses *)
      hbm_demand /. slowdown *. 7.5e-12
    in
    let chip_power_w =
      (float_of_int cores_used *. core_power) +. t.uncore_power_w +. hbm_power
    in
    Ok
      {
        soc = t;
        per_core;
        cores_used;
        batch = per_core_batch * cores_used;
        hbm_slowdown;
        noc_slowdown = Float.max llc_slowdown noc_slowdown;
        llc_hit_fraction;
        step_seconds;
        chip_power_w;
        throughput_per_s =
          float_of_int (per_core_batch * cores_used) /. step_seconds;
      }

let peak_flops t ~precision =
  float_of_int t.cores *. Config.peak_flops t.core ~precision

let compute_die_area_mm2 t =
  let cores = float_of_int t.cores *. Silicon.core_area_mm2 t.core in
  let llc =
    float_of_int t.llc_bytes /. float_of_int Ascend_util.Units.mib
    *. Silicon.sram_mm2_per_mib_7nm
  in
  let cpu = float_of_int t.cpu_cores *. 3.0 in
  (* 128-channel DVPP, mesh routers, HBM PHYs and SerDes *)
  let dvpp_noc_phy = 65. in
  (* ~15% top-level integration overhead *)
  1.15 *. (cores +. llc +. cpu +. dvpp_noc_phy)

let pp_result ppf r =
  Format.fprintf ppf
    "%s: batch %d on %d cores, step %a, %.0f items/s, %.0f W (LLC hit %.0f%%, \
     HBM x%.2f, NoC x%.2f)"
    r.soc.soc_name r.batch r.cores_used Ascend_util.Units.pp_seconds
    r.step_seconds r.throughput_per_s r.chip_power_w
    (100. *. r.llc_hit_fraction)
    r.hbm_slowdown r.noc_slowdown
