type t = L0a | L0b | L0c | L1 | Ub | External

let all = [ L0a; L0b; L0c; L1; Ub; External ]

let name = function
  | L0a -> "L0A"
  | L0b -> "L0B"
  | L0c -> "L0C"
  | L1 -> "L1"
  | Ub -> "UB"
  | External -> "EXT"

let pp ppf t = Format.pp_print_string ppf (name t)
let equal (a : t) b = a = b

let index = function
  | L0a -> 0
  | L0b -> 1
  | L0c -> 2
  | L1 -> 3
  | Ub -> 4
  | External -> 5

let count = 6

let capacity_bytes (c : Ascend_arch.Config.t) = function
  | L0a -> Some c.buffers.l0a_bytes
  | L0b -> Some c.buffers.l0b_bytes
  | L0c -> Some c.buffers.l0c_bytes
  | L1 -> Some c.buffers.l1_bytes
  | Ub -> Some c.buffers.ub_bytes
  | External -> None

let legal_move ~src ~dst =
  match (src, dst) with
  | External, L1 -> Some Pipe.Mte2
  | External, Ub -> Some Pipe.Mte2
  | L1, L0a -> Some Pipe.Mte1
  | L1, L0b -> Some Pipe.Mte1
  | L1, Ub -> Some Pipe.Mte1
  | L0c, Ub -> Some Pipe.Vector
  | Ub, External -> Some Pipe.Mte3
  | Ub, L1 -> Some Pipe.Mte3
  | _, _ -> None
