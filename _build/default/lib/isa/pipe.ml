type t = Scalar | Vector | Cube | Mte1 | Mte2 | Mte3

let all = [ Scalar; Vector; Cube; Mte1; Mte2; Mte3 ]

let name = function
  | Scalar -> "S"
  | Vector -> "V"
  | Cube -> "M"
  | Mte1 -> "MTE1"
  | Mte2 -> "MTE2"
  | Mte3 -> "MTE3"

let pp ppf t = Format.pp_print_string ppf (name t)

let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b

let index = function
  | Scalar -> 0
  | Vector -> 1
  | Cube -> 2
  | Mte1 -> 3
  | Mte2 -> 4
  | Mte3 -> 5

let count = 6
