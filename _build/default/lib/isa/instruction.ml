type mte_transform =
  | Plain
  | Img2col of { expansion : float }
  | Transpose
  | Decompress of { ratio : float }

type t =
  | Cube_matmul of {
      m : int;
      k : int;
      n : int;
      precision : Ascend_arch.Precision.t;
      accumulate : bool;
    }
  | Vector_op of {
      op_name : string;
      bytes : int;
      reads_ub : bool;
      writes_ub : bool;
    }
  | Mte_move of {
      src : Buffer_id.t;
      dst : Buffer_id.t;
      bytes : int;
      transform : mte_transform;
    }
  | Scalar_op of { cycles : int }
  | Set_flag of { from_pipe : Pipe.t; to_pipe : Pipe.t; flag : int }
  | Wait_flag of { from_pipe : Pipe.t; to_pipe : Pipe.t; flag : int }
  | Barrier

let pipe_of = function
  | Cube_matmul _ -> Some Pipe.Cube
  | Vector_op _ -> Some Pipe.Vector
  | Scalar_op _ -> Some Pipe.Scalar
  | Set_flag { from_pipe; _ } -> Some from_pipe
  | Wait_flag { to_pipe; _ } -> Some to_pipe
  | Mte_move { src; dst; _ } -> Buffer_id.legal_move ~src ~dst
  | Barrier -> None

let mte_move ~src ~dst ?(transform = Plain) ~bytes () =
  if bytes < 0 then invalid_arg "Instruction.mte_move: negative bytes";
  (match transform with
  | Img2col { expansion } when expansion <= 0. ->
    invalid_arg "Instruction.mte_move: img2col expansion <= 0"
  | Decompress { ratio } when ratio <= 0. || ratio > 1. ->
    invalid_arg "Instruction.mte_move: decompress ratio out of (0,1]"
  | Plain | Img2col _ | Transpose | Decompress _ -> ());
  match Buffer_id.legal_move ~src ~dst with
  | Some _ -> Mte_move { src; dst; bytes; transform }
  | None ->
    invalid_arg
      (Printf.sprintf "Instruction.mte_move: illegal move %s -> %s"
         (Buffer_id.name src) (Buffer_id.name dst))

let source_bytes = function
  | Mte_move { bytes; transform; _ } -> (
    match transform with
    | Plain | Transpose -> bytes
    | Img2col { expansion } -> int_of_float (float_of_int bytes /. expansion)
    | Decompress { ratio } -> int_of_float (float_of_int bytes *. ratio))
  | Cube_matmul _ | Vector_op _ | Scalar_op _ | Set_flag _ | Wait_flag _
  | Barrier ->
    0

let transform_name = function
  | Plain -> ""
  | Img2col { expansion } -> Printf.sprintf " img2col(x%.1f)" expansion
  | Transpose -> " trans"
  | Decompress { ratio } -> Printf.sprintf " decomp(%.2f)" ratio

let pp ppf = function
  | Cube_matmul { m; k; n; precision; accumulate } ->
    Format.fprintf ppf "M    matmul %dx%dx%d %s%s" m k n
      (Ascend_arch.Precision.name precision)
      (if accumulate then " +=" else "")
  | Vector_op { op_name; bytes; _ } ->
    Format.fprintf ppf "V    %s %dB" op_name bytes
  | Mte_move { src; dst; bytes; transform } ->
    Format.fprintf ppf "MTE  %s->%s %dB%s" (Buffer_id.name src)
      (Buffer_id.name dst) bytes (transform_name transform)
  | Scalar_op { cycles } -> Format.fprintf ppf "S    scalar %dcyc" cycles
  | Set_flag { from_pipe; to_pipe; flag } ->
    Format.fprintf ppf "SET  %s->%s #%d" (Pipe.name from_pipe)
      (Pipe.name to_pipe) flag
  | Wait_flag { from_pipe; to_pipe; flag } ->
    Format.fprintf ppf "WAIT %s->%s #%d" (Pipe.name from_pipe)
      (Pipe.name to_pipe) flag
  | Barrier -> Format.fprintf ppf "BARRIER"
