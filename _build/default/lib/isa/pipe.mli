(** Execution pipes of an Ascend core (paper Figure 1 / Figure 3).

    The PSQ dispatches instructions to per-pipe queues that run in
    parallel; explicit flags synchronise across pipes.  The three MTE
    pipes mirror the DaVinci split of the memory-transfer engine:
    [Mte2] loads external memory into L1, [Mte1] feeds L0A/L0B from L1
    (applying img2col / transpose / decompression), [Mte3] drains the
    unified buffer back out. *)

type t = Scalar | Vector | Cube | Mte1 | Mte2 | Mte3

val all : t list
val name : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
val index : t -> int
(** Stable index in [0, 5] for array-backed per-pipe state. *)

val count : int
