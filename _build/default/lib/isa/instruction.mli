(** The Ascend core instruction vocabulary at the granularity the
    simulator models: one instruction = one tile-level operation on an
    execution pipe, plus the explicit cross-pipe synchronisation of
    paper Figure 3. *)

type mte_transform =
  | Plain
  | Img2col of { expansion : float }
      (** convolution-to-GEMM expansion (paper §2.2): the move writes
          [bytes] but reads [bytes / expansion] unique source bytes (each
          input element appears in up to kh*kw matrix columns; strided
          1x1 convolutions subsample, giving expansion < 1) *)
  | Transpose      (** the MTE [trans] module *)
  | Decompress of { ratio : float }
      (** zero-value decompression; [ratio] is compressed/uncompressed
          in (0, 1] — the move reads [bytes *. ratio] source bytes *)

type t =
  | Cube_matmul of {
      m : int;
      k : int;
      n : int;
      precision : Ascend_arch.Precision.t;
      accumulate : bool;
          (** accumulate into existing L0C contents (k-loop continuation) *)
    }
  | Vector_op of {
      op_name : string;
      bytes : int;       (** bytes processed at the vector width *)
      reads_ub : bool;
      writes_ub : bool;
    }
  | Mte_move of {
      src : Buffer_id.t;
      dst : Buffer_id.t;
      bytes : int;       (** bytes written to [dst] *)
      transform : mte_transform;
    }
  | Scalar_op of { cycles : int }
  | Set_flag of { from_pipe : Pipe.t; to_pipe : Pipe.t; flag : int }
  | Wait_flag of { from_pipe : Pipe.t; to_pipe : Pipe.t; flag : int }
  | Barrier
      (** full-core barrier: every pipe drains before any pipe proceeds *)

val pipe_of : t -> Pipe.t option
(** The pipe an instruction executes on ([Set_flag] executes on its
    [from_pipe]; [Wait_flag] blocks its [to_pipe]; [Barrier] -> [None]). *)

val mte_move : src:Buffer_id.t -> dst:Buffer_id.t -> ?transform:mte_transform ->
  bytes:int -> unit -> t
(** Raises [Invalid_argument] if the src/dst pair is not architecturally
    legal or bytes is negative. *)

val source_bytes : t -> int
(** Bytes read from the source of an [Mte_move] (differs from [bytes]
    under [Img2col] expansion and [Decompress]); 0 for other forms. *)

val pp : Format.formatter -> t -> unit
(** One-line disassembly. *)
