lib/isa/buffer_id.ml: Ascend_arch Format Pipe
