lib/isa/instruction.ml: Ascend_arch Buffer_id Format Pipe Printf
