lib/isa/program.mli: Ascend_arch Buffer_id Format Instruction Pipe
