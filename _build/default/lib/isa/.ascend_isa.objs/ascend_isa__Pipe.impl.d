lib/isa/pipe.ml: Format Stdlib
