lib/isa/encoding.ml: Ascend_arch Buffer Buffer_id Bytes Char Hashtbl Instruction Int32 List Pipe Printf String
