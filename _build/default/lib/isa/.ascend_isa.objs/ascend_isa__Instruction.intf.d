lib/isa/instruction.mli: Ascend_arch Buffer_id Format Pipe
