lib/isa/program.ml: Array Ascend_arch Buffer_id Format Hashtbl Instruction List Pipe Printf
