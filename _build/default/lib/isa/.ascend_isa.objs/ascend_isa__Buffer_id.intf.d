lib/isa/buffer_id.mli: Ascend_arch Format Pipe
