lib/isa/encoding.mli: Bytes Instruction
