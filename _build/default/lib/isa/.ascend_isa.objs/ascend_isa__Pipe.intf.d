lib/isa/pipe.mli: Format
