(** A compiled program for one Ascend core: an ordered instruction list
    (PSQ order) with the static buffer footprint the code generator
    reserved in each on-chip buffer. *)

type t = {
  program_name : string;
  instructions : Instruction.t list;
  buffer_peak : (Buffer_id.t * int) list;
      (** peak resident bytes per buffer, computed at code generation *)
}

val make :
  name:string -> ?buffer_peak:(Buffer_id.t * int) list ->
  Instruction.t list -> t

val length : t -> int

val concat : name:string -> t list -> t
(** Sequential composition separated by barriers; buffer peaks take the
    per-part maximum (parts run after one another). *)

val validate : Ascend_arch.Config.t -> t -> (unit, string) result
(** Static checks:
    - every instruction maps to a pipe (or is a barrier);
    - every [Wait_flag] has a matching earlier-or-equal count of
      [Set_flag]s on the same (from, to, flag) triple by end of program
      (no flag can remain forever unsatisfied);
    - flag ids are within the hardware's range (0..63 per pipe pair);
    - declared buffer peaks fit the configuration's capacities;
    - cube instructions only use precisions this core supports. *)

val stats : t -> (Pipe.t * int) list
(** Instruction count per pipe. *)

val pp : Format.formatter -> t -> unit
(** Full disassembly. *)
