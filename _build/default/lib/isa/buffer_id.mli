(** On-chip buffer identities of the Ascend core memory hierarchy
    (paper §2.2): the three cube-dedicated L0 buffers, the L1 staging
    buffer, the unified buffer, and the external world behind the BIU. *)

type t = L0a | L0b | L0c | L1 | Ub | External

val all : t list
val name : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val index : t -> int
val count : int

val capacity_bytes : Ascend_arch.Config.t -> t -> int option
(** [None] for [External]. *)

val legal_move : src:t -> dst:t -> Pipe.t option
(** Which MTE pipe serves a transfer, if it is architecturally legal:
    External->L1 on MTE2, L1->L0A/L0B on MTE1, L0C->UB on Vector (the
    vector unit drains cube results, §2.2, so it is not an MTE move),
    UB->External on MTE3, External->UB on MTE2.  Illegal pairs return
    [None]. *)
