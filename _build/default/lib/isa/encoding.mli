(** Binary instruction encoding and the instruction-compression scheme of
    paper §3.2 ("The instruction compression technique is used in the
    Ascend-Lite core to reduce the bandwidth pressure on the NoC").

    Encoding: a fixed 16-byte word per instruction (opcode, operands,
    byte counts).  Compression exploits the streams' regularity — tiled
    loops repeat near-identical instructions — with two passes:

    + delta encoding against the previous instruction of the same opcode
      (identical instructions collapse to 2 bytes);
    + run-length encoding of repeated words.

    [decode (encode p)] is the identity on instruction lists, and the
    compressed form round-trips too (property-tested). *)

val encode : Instruction.t list -> Bytes.t
(** Fixed-width binary form, 16 bytes per instruction. *)

val decode : Bytes.t -> (Instruction.t list, string) result
(** Inverse of {!encode}; [Error] on malformed input. *)

val compress : Bytes.t -> Bytes.t
(** Delta + RLE over 16-byte words. *)

val decompress : Bytes.t -> (Bytes.t, string) result

val compression_ratio : Instruction.t list -> float
(** compressed size / raw size, in (0, 1]. *)

val fetch_bandwidth_bytes_per_cycle :
  instructions_per_cycle:float -> compressed:bool ->
  Instruction.t list -> float
(** Average instruction-fetch traffic the core pulls over the NoC —
    the §3.2 bandwidth-pressure metric. *)
