open Ascend.Nn
module Shape = Ascend.Tensor.Shape
module Tensor = Ascend.Tensor.Tensor
module Precision = Ascend.Arch.Precision
module Prng = Ascend.Util.Prng

let validated g =
  match Graph.validate g with
  | Ok () -> g
  | Error e -> Alcotest.failf "graph %s invalid: %s" (Graph.name g) e

(* ------------------------------------------------------------------ *)
(* Graph builder                                                      *)

let test_builder_shapes () =
  let g = Graph.create ~name:"t" ~dtype:Precision.Fp16 in
  let x = Graph.input g (Shape.nchw ~n:1 ~c:3 ~h:8 ~w:8) in
  let c = Graph.conv2d g ~cout:16 ~k:3 ~padding:1 x in
  Alcotest.(check string) "conv shape" "[1x16x8x8]"
    (Shape.to_string (Graph.find g c).out_shape);
  let p = Graph.max_pool g ~kernel:2 ~stride:2 c in
  Alcotest.(check string) "pool shape" "[1x16x4x4]"
    (Shape.to_string (Graph.find g p).out_shape);
  let gap = Graph.global_avg_pool g p in
  let fc = Graph.linear g ~out_features:10 gap in
  Alcotest.(check string) "fc shape" "[1x10]"
    (Shape.to_string (Graph.find g fc).out_shape);
  ignore (Graph.output g fc);
  ignore (validated g)

let test_builder_rejects_forward_refs () =
  let g = Graph.create ~name:"t" ~dtype:Precision.Fp16 in
  Alcotest.(check bool) "bad input id raises" true
    (try
       ignore (Graph.relu g 5);
       false
     with Invalid_argument _ -> true)

let test_graph_without_output_invalid () =
  let g = Graph.create ~name:"t" ~dtype:Precision.Fp16 in
  let x = Graph.input g (Shape.vector 4) in
  ignore (Graph.relu g x);
  match Graph.validate g with
  | Error e ->
    Alcotest.(check string) "message" "graph has no output node" e
  | Ok () -> Alcotest.fail "should be invalid"

let test_matmul_shape_inference () =
  let g = Graph.create ~name:"t" ~dtype:Precision.Fp16 in
  let a = Graph.input g (Shape.of_list [ 4; 8; 16 ]) in
  let b = Graph.input g (Shape.of_list [ 4; 8; 16 ]) in
  let s = Graph.matmul g ~transpose_b:true a b in
  Alcotest.(check string) "scores" "[4x8x8]"
    (Shape.to_string (Graph.find g s).out_shape);
  Alcotest.(check bool) "mismatched inner raises" true
    (try
       let c = Graph.input g (Shape.of_list [ 4; 8; 4 ]) in
       ignore (Graph.matmul g a c);
       false
     with Invalid_argument _ -> true)

let test_concat () =
  let g = Graph.create ~name:"t" ~dtype:Precision.Fp16 in
  let a = Graph.input g (Shape.nchw ~n:1 ~c:4 ~h:2 ~w:2) in
  let b = Graph.input g (Shape.nchw ~n:1 ~c:6 ~h:2 ~w:2) in
  let c = Graph.concat g ~axis:1 [ a; b ] in
  Alcotest.(check string) "concat" "[1x10x2x2]"
    (Shape.to_string (Graph.find g c).out_shape)

(* ------------------------------------------------------------------ *)
(* Model zoo                                                          *)

let test_zoo_validates () =
  ignore (validated (Resnet.v1_5 ()));
  ignore (validated (Resnet.v1_5_18 ()));
  ignore (validated (Mobilenet.v2 ()));
  ignore (validated (Bert.base ~seq_len:32 ()));
  ignore (validated (Bert.large ~seq_len:32 ()));
  ignore (validated (Gesture.build ()));
  ignore (validated (Vgg.v16 ()));
  ignore (validated (Siamese.build ()));
  ignore (validated (Wide_deep.default ()));
  ignore (validated (Pointnet.build ()));
  ignore (validated (Face_detect.build ()));
  ignore (validated (Fpn_detector.build ()))

let test_upsample () =
  let g = Graph.create ~name:"up" ~dtype:Precision.Fp32 in
  let x = Graph.input g ~name:"x" (Shape.nchw ~n:1 ~c:2 ~h:2 ~w:2) in
  let u = Graph.upsample g ~factor:3 x in
  Alcotest.(check string) "shape" "[1x2x6x6]"
    (Shape.to_string (Graph.find g u).out_shape);
  ignore (Graph.output g u);
  let params = Eval.random_params g in
  let input =
    Tensor.of_array (Shape.nchw ~n:1 ~c:2 ~h:2 ~w:2)
      [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |]
  in
  (match Eval.run g params ~inputs:[ ("x", input) ] with
  | [ (_, t) ] ->
    Alcotest.(check (float 0.)) "nearest copy" 1. (Tensor.get t [| 0; 0; 2; 2 |]);
    Alcotest.(check (float 0.)) "next block" 2. (Tensor.get t [| 0; 0; 1; 4 |]);
    Alcotest.(check (float 0.)) "bottom" 4. (Tensor.get t [| 0; 0; 5; 5 |])
  | _ -> Alcotest.fail "one output");
  (* gradient: each source pixel receives factor^2 ones *)
  let grads = Autodiff.backward g params ~inputs:[ ("x", input) ] () in
  match grads.Autodiff.input_grads with
  | [ (_, gx) ] ->
    Alcotest.(check (float 0.)) "9 ones per source" 9. (Tensor.get_flat gx 0)
  | _ -> Alcotest.fail "one input grad"

let test_fpn_structure () =
  let g = validated (Fpn_detector.build ()) in
  let ups =
    List.filter
      (fun (n : Graph.node) ->
        match n.op with Op.Upsample _ -> true | _ -> false)
      (Graph.nodes g)
  in
  Alcotest.(check int) "three top-down upsamples" 3 (List.length ups);
  (* pyramid levels have matching channel counts *)
  List.iter
    (fun tag ->
      let n =
        List.find (fun (n : Graph.node) -> n.node_name = tag ^ ".smooth")
          (Graph.nodes g)
      in
      Alcotest.(check int) (tag ^ " channels") Fpn_detector.pyramid_channels
        (Shape.dim n.out_shape 1))
    [ "p2"; "p3"; "p4"; "p5" ]

let test_siamese_structure () =
  let g = validated (Siamese.build ()) in
  (* two inputs and one cross-correlation matmul *)
  let inputs =
    List.filter (fun (n : Graph.node) -> n.op = Op.Input) (Graph.nodes g)
  in
  Alcotest.(check int) "two camera inputs" 2 (List.length inputs);
  let xcorr =
    List.find (fun (n : Graph.node) -> n.node_name = "xcorr") (Graph.nodes g)
  in
  Alcotest.(check int) "joins two branches" 2 (List.length xcorr.inputs);
  (* weight-shared towers have identical per-tower MAC counts per stage
     scaled by spatial size; just check both towers produce 256 channels *)
  let feat name =
    (List.find (fun (n : Graph.node) -> n.node_name = name) (Graph.nodes g))
      .out_shape
  in
  Alcotest.(check int) "exemplar tower channels" 256
    (Shape.dim (feat "exemplar_tower.conv5") 1);
  Alcotest.(check int) "search tower channels" 256
    (Shape.dim (feat "search_tower.conv5") 1)

let test_wide_deep_structure () =
  let g = validated (Wide_deep.default ~batch:8 ()) in
  let w = Workload.of_graph g in
  (* embeddings dominate parameters; GEMMs dominate cube work *)
  Alcotest.(check bool) "has cube GEMMs" true (w.Workload.cube_macs > 0);
  let params = Graph.total_params g in
  let emb = 26 * 100_000 * 16 in
  Alcotest.(check bool) "embedding-dominated params" true
    (params > emb && params < emb * 2);
  (* the output is a probability *)
  let out = List.hd (Graph.outputs g) in
  Alcotest.(check string) "scalar output per row" "[8x1]"
    (Shape.to_string out.out_shape)

let gmacs g =
  float_of_int (Workload.of_graph g).Workload.cube_macs /. 1e9

let test_resnet50_macs () =
  (* the canonical ResNet-50 number: ~4.1 GMACs per 224x224 image *)
  let v = gmacs (Resnet.v1_5 ~batch:1 ()) in
  Alcotest.(check bool) "4.0..4.2 GMACs" true (v > 3.9 && v < 4.3)

let test_mobilenet_macs () =
  (* MobileNetV2: ~0.3 GMACs, most of them in pointwise convs; the
     depthwise MACs land on the vector unit *)
  let g = Mobilenet.v2 ~batch:1 () in
  let w = Workload.of_graph g in
  let cube_g = float_of_int w.Workload.cube_macs /. 1e9 in
  Alcotest.(check bool) "cube macs 0.25..0.35G" true
    (cube_g > 0.25 && cube_g < 0.35);
  Alcotest.(check bool) "vector work present (depthwise)" true
    (w.Workload.vector_elems > 30e6)

let test_vgg_macs () =
  let v = gmacs (Vgg.v16 ~batch:1 ()) in
  (* VGG-16: ~15.5 GMACs *)
  Alcotest.(check bool) "15..16 GMACs" true (v > 15. && v < 16.)

let test_bert_params () =
  (* BERT-Large: ~334 M params including embeddings *)
  let g = Bert.large ~seq_len:32 () in
  let p = float_of_int (Graph.total_params g) /. 1e6 in
  Alcotest.(check bool) "320..350 M params" true (p > 320. && p < 350.)

let test_bert_macs_scale_with_seq () =
  let m s = gmacs (Bert.base ~seq_len:s ()) in
  Alcotest.(check bool) "longer sequences cost more" true (m 64 > m 32);
  (* linear layers dominate at short sequence, so roughly 2x *)
  let r = m 64 /. m 32 in
  Alcotest.(check bool) "scaling between 1.9x and 2.6x" true (r > 1.9 && r < 2.6)

let test_batch_scaling () =
  let m b = gmacs (Resnet.v1_5 ~batch:b ()) in
  Alcotest.(check (float 1e-6)) "macs scale linearly in batch" (4. *. m 1) (m 4)

(* ------------------------------------------------------------------ *)
(* Workload characterisation                                          *)

let test_depthwise_on_vector () =
  let g = Graph.create ~name:"t" ~dtype:Precision.Fp16 in
  let x = Graph.input g (Shape.nchw ~n:1 ~c:8 ~h:4 ~w:4) in
  let dw = Graph.depthwise_conv2d g ~k:3 ~padding:1 x in
  let w = Workload.of_node g (Graph.find g dw) in
  Alcotest.(check int) "no cube macs" 0 w.Workload.cube_macs;
  Alcotest.(check (float 0.)) "one element-op per MAC"
    (float_of_int (8 * 4 * 4 * 9))
    w.Workload.vector_elems

let test_conv_gemm_dims () =
  let g = Graph.create ~name:"t" ~dtype:Precision.Fp16 in
  let x = Graph.input g (Shape.nchw ~n:2 ~c:3 ~h:8 ~w:8) in
  let c = Graph.conv2d g ~cout:16 ~k:3 ~padding:1 x in
  let w = Workload.of_node g (Graph.find g c) in
  match w.Workload.gemms with
  | [ { count = 1; m; k; n } ] ->
    Alcotest.(check int) "M = n*oh*ow" (2 * 8 * 8) m;
    Alcotest.(check int) "K = cin*kh*kw" (3 * 3 * 3) k;
    Alcotest.(check int) "N = cout" 16 n
  | _ -> Alcotest.fail "expected one GEMM"

let test_attention_gemm_batch () =
  let g = Bert.base ~batch:2 ~seq_len:32 () in
  let scores =
    List.find
      (fun (n : Graph.node) -> n.node_name = "layer0.scores")
      (Graph.nodes g)
  in
  let w = Workload.of_node g scores in
  match w.Workload.gemms with
  | [ { count; m; k; n } ] ->
    Alcotest.(check int) "count = batch*heads" (2 * 12) count;
    Alcotest.(check int) "m = seq" 32 m;
    Alcotest.(check int) "k = head dim" 64 k;
    Alcotest.(check int) "n = seq" 32 n
  | _ -> Alcotest.fail "expected one batched GEMM"

let workload_nonnegative_prop =
  QCheck.Test.make ~count:20 ~name:"workloads are non-negative on random CNNs"
    QCheck.(pair (int_range 1 3) (int_range 0 100))
    (fun (depth, seed) ->
      let rng = Prng.create ~seed in
      let g = Graph.create ~name:"rand" ~dtype:Precision.Fp16 in
      let x = ref (Graph.input g (Shape.nchw ~n:1 ~c:4 ~h:16 ~w:16)) in
      for _ = 1 to depth do
        let cout = 4 * (1 + Prng.int rng ~bound:4) in
        x := Graph.conv2d g ~cout ~k:3 ~padding:1 !x;
        x := Graph.relu g !x
      done;
      ignore (Graph.output g !x);
      let w = Workload.of_graph g in
      w.Workload.cube_macs >= 0 && w.Workload.vector_elems >= 0.
      && Graph.validate g = Ok ())

(* ------------------------------------------------------------------ *)
(* Training workload                                                  *)

let test_backward_doubles_gemm () =
  let g = Graph.create ~name:"t" ~dtype:Precision.Fp16 in
  let x = Graph.input g (Shape.matrix 8 32) in
  let fc = Graph.linear g ~out_features:16 x in
  ignore (Graph.output g fc);
  let node = Graph.find g fc in
  let fwd = Workload.of_node g node in
  let bwd = Training.backward_of_node g node in
  Alcotest.(check int) "2x macs" (2 * fwd.Workload.cube_macs)
    bwd.Workload.cube_macs;
  Alcotest.(check int) "two backward GEMMs" 2 (List.length bwd.Workload.gemms);
  (* SGD update: 3 vector ops per parameter *)
  Alcotest.(check (float 0.)) "optimizer update" (3. *. float_of_int (32 * 16))
    bwd.Workload.vector_elems

let test_training_heavier_than_inference () =
  let g = Resnet.v1_5_18 () in
  let inf = Workload.of_graph g in
  let tra = Training.graph_training_workload g in
  Alcotest.(check bool) "3x cube work (fwd + 2x bwd)" true
    (tra.Workload.cube_macs > (2 * inf.Workload.cube_macs));
  Alcotest.(check bool) "vector grows more than cube" true
    (tra.Workload.vector_elems /. inf.Workload.vector_elems
     > float_of_int tra.Workload.cube_macs /. float_of_int inf.Workload.cube_macs)

(* ------------------------------------------------------------------ *)
(* Numeric evaluation                                                 *)

let test_eval_small_cnn () =
  let g = Graph.create ~name:"t" ~dtype:Precision.Fp32 in
  let x = Graph.input g ~name:"in" (Shape.nchw ~n:1 ~c:2 ~h:6 ~w:6) in
  let c = Graph.conv2d g ~cout:4 ~k:3 x in
  let r = Graph.relu g c in
  let p = Graph.max_pool g ~kernel:2 ~stride:2 r in
  let gp = Graph.global_avg_pool g p in
  let fc = Graph.linear g ~out_features:3 gp in
  ignore (Graph.output g ~name:"out" fc);
  let params = Eval.random_params ~seed:1 g in
  let rng = Prng.create ~seed:2 in
  let input = Tensor.random rng (Shape.nchw ~n:1 ~c:2 ~h:6 ~w:6) in
  match Eval.run g params ~inputs:[ ("in", input) ] with
  | [ ("out", t) ] ->
    Alcotest.(check string) "shape" "[1x3]" (Shape.to_string (Tensor.shape t));
    Alcotest.(check bool) "finite" true
      (Tensor.fold (fun acc v -> acc && Float.is_finite v) true t)
  | _ -> Alcotest.fail "expected single output"

let test_eval_conv_matches_reference () =
  let g = Graph.create ~name:"t" ~dtype:Precision.Fp32 in
  let x = Graph.input g ~name:"in" (Shape.nchw ~n:1 ~c:3 ~h:5 ~w:5) in
  let c = Graph.conv2d g ~name:"c" ~cout:2 ~k:3 ~padding:1 x in
  ignore (Graph.output g ~name:"out" c);
  let params = Eval.random_params ~seed:5 g in
  let rng = Prng.create ~seed:6 in
  let input = Tensor.random rng (Shape.nchw ~n:1 ~c:3 ~h:5 ~w:5) in
  let out =
    match Eval.run g params ~inputs:[ ("in", input) ] with
    | [ (_, t) ] -> t
    | _ -> Alcotest.fail "one output"
  in
  let w =
    match Eval.find_param params "c" with
    | Some w -> w
    | None -> Alcotest.fail "conv weight"
  in
  let reference =
    Ascend.Tensor.Ops.conv2d
      ~params:{ Ascend.Tensor.Ops.stride = 1; padding = 1; groups = 1 }
      input w
  in
  Alcotest.(check bool) "matches Ops.conv2d" true
    (Tensor.max_abs_diff out reference < 1e-9)

let test_eval_missing_input () =
  let g = Graph.create ~name:"t" ~dtype:Precision.Fp32 in
  let x = Graph.input g ~name:"in" (Shape.vector 4) in
  ignore (Graph.output g (Graph.relu g x));
  let params = Eval.random_params g in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Eval.run g params ~inputs:[]);
       false
     with Invalid_argument _ -> true)

let test_eval_bert_tiny () =
  (* a 1-layer toy transformer executes end to end *)
  let cfg =
    { Bert.layers = 1; hidden = 32; heads = 4; intermediate = 64;
      vocab_size = 100; max_position = 64 }
  in
  let g = Bert.build ~batch:1 ~seq_len:8 cfg in
  let params = Eval.random_params ~seed:3 g in
  let ids =
    Tensor.init (Shape.matrix 1 8) (fun i -> float_of_int ((i.(1) * 7) mod 100))
  in
  match Eval.run g params ~inputs:[ ("input_ids", ids) ] with
  | [ (_, t) ] ->
    Alcotest.(check string) "shape" "[8x32]" (Shape.to_string (Tensor.shape t));
    Alcotest.(check bool) "tanh-bounded" true
      (Tensor.fold (fun acc v -> acc && Float.abs v <= 1.) true t)
  | _ -> Alcotest.fail "one output"

(* ------------------------------------------------------------------ *)
(* Quantized inference (the §3.3 precision trade, numerically)         *)

let small_cnn () =
  let g = Graph.create ~name:"q" ~dtype:Precision.Fp32 in
  let x = Graph.input g ~name:"in" (Shape.nchw ~n:1 ~c:3 ~h:8 ~w:8) in
  let c = Graph.conv2d g ~name:"c1" ~cout:8 ~k:3 ~padding:1 x in
  let r = Graph.relu g c in
  let c2 = Graph.conv2d g ~name:"c2" ~cout:8 ~k:3 ~padding:1 r in
  let gp = Graph.global_avg_pool g c2 in
  let fc = Graph.linear g ~name:"fc" ~out_features:4 gp in
  ignore (Graph.output g fc);
  g

let test_quantized_int8_close () =
  let g = small_cnn () in
  let params = Eval.random_params ~seed:21 g in
  let rng = Prng.create ~seed:22 in
  let inputs = [ ("in", Tensor.random rng (Shape.nchw ~n:1 ~c:3 ~h:8 ~w:8)) ] in
  let r = Quantized.compare_outputs g params ~inputs ~dtype:Precision.Int8 in
  Alcotest.(check bool) "all params counted" true
    (r.Quantized.parameters_quantized > 500);
  (* int8 weight-only PTQ keeps the output close: > 25 dB SNR *)
  Alcotest.(check bool)
    (Printf.sprintf "int8 SNR %.1f dB > 25" r.Quantized.output_snr_db)
    true (r.Quantized.output_snr_db > 25.)

let test_quantized_int4_degrades_more () =
  let g = small_cnn () in
  let params = Eval.random_params ~seed:23 g in
  let rng = Prng.create ~seed:24 in
  let inputs = [ ("in", Tensor.random rng (Shape.nchw ~n:1 ~c:3 ~h:8 ~w:8)) ] in
  let r8 = Quantized.compare_outputs g params ~inputs ~dtype:Precision.Int8 in
  let r4 = Quantized.compare_outputs g params ~inputs ~dtype:Precision.Int4 in
  Alcotest.(check bool) "int4 noisier than int8" true
    (r4.Quantized.output_snr_db < r8.Quantized.output_snr_db);
  Alcotest.(check bool) "int4 still correlated (> 8 dB)" true
    (r4.Quantized.output_snr_db > 8.)

let test_quantized_rejects_float () =
  let g = small_cnn () in
  let params = Eval.random_params g in
  Alcotest.(check bool) "fp16 rejected" true
    (try
       ignore (Quantized.quantize_params ~dtype:Precision.Fp16 g params);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Autodiff: gradient checking against finite differences             *)

let grad_check ?(tol = 1e-3) g ~seed =
  let params = Eval.random_params ~seed g in
  let rng = Prng.create ~seed:(seed + 100) in
  let inputs =
    List.filter_map
      (fun (n : Graph.node) ->
        match n.op with
        | Op.Input -> Some (n.node_name, Tensor.random rng n.out_shape)
        | _ -> None)
      (Graph.nodes g)
  in
  let grads = Autodiff.backward g params ~inputs () in
  (* check a handful of entries of every parameter *)
  List.iter
    (fun (name, gt) ->
      let n = Tensor.numel gt in
      List.iter
        (fun idx ->
          let idx = idx mod n in
          let analytic = Tensor.get_flat gt idx in
          let numeric =
            Autodiff.numeric_param_grad g params ~inputs ~param:name ~index:idx
              ()
          in
          let scale = Float.max 1. (Float.abs numeric) in
          if Float.abs (analytic -. numeric) /. scale > tol then
            Alcotest.failf "%s[%d]: analytic %.6f vs numeric %.6f" name idx
              analytic numeric)
        [ 0; 7; 13; n - 1 ])
    grads.Autodiff.param_grads

let test_autodiff_linear () =
  let g = Graph.create ~name:"lin" ~dtype:Precision.Fp32 in
  let x = Graph.input g ~name:"x" (Shape.matrix 3 5) in
  let fc = Graph.linear g ~name:"fc" ~out_features:4 x in
  let s = Graph.activation g ~name:"sig" Op.Sigmoid fc in
  ignore (Graph.output g s);
  grad_check g ~seed:1

let test_autodiff_conv_pool () =
  let g = Graph.create ~name:"conv" ~dtype:Precision.Fp32 in
  let x = Graph.input g ~name:"x" (Shape.nchw ~n:1 ~c:2 ~h:6 ~w:6) in
  let c = Graph.conv2d g ~name:"c1" ~cout:3 ~k:3 ~padding:1 x in
  let r = Graph.relu g c in
  let p = Graph.max_pool g ~kernel:2 ~stride:2 r in
  let a = Graph.avg_pool g ~kernel:3 ~stride:3 p in
  let gp = Graph.global_avg_pool g a in
  let fc = Graph.linear g ~name:"head" ~out_features:2 gp in
  ignore (Graph.output g fc);
  grad_check g ~seed:2

let test_autodiff_strided_grouped_conv () =
  let g = Graph.create ~name:"dw" ~dtype:Precision.Fp32 in
  let x = Graph.input g ~name:"x" (Shape.nchw ~n:1 ~c:4 ~h:6 ~w:6) in
  let c = Graph.conv2d g ~name:"pw" ~cout:4 ~k:1 x in
  let d = Graph.depthwise_conv2d g ~name:"dwc" ~k:3 ~padding:1 c in
  let s = Graph.conv2d g ~name:"strided" ~cout:2 ~k:3 ~stride:2 d in
  let gp = Graph.global_avg_pool g s in
  ignore (Graph.output g gp);
  grad_check g ~seed:3

let test_autodiff_norms_and_softmax () =
  let g = Graph.create ~name:"norm" ~dtype:Precision.Fp32 in
  let x = Graph.input g ~name:"x" (Shape.nchw ~n:2 ~c:3 ~h:4 ~w:4) in
  let bn = Graph.batch_norm g ~name:"bn" x in
  let gp = Graph.global_avg_pool g bn in
  let fc = Graph.linear g ~name:"fc" ~out_features:5 gp in
  let ln = Graph.layer_norm g fc in
  let sm = Graph.softmax g ln in
  ignore (Graph.output g sm);
  grad_check g ~seed:4

let test_autodiff_attention () =
  (* matmul both ways, residual add, gelu *)
  let g = Graph.create ~name:"attn" ~dtype:Precision.Fp32 in
  let x = Graph.input g ~name:"x" (Shape.matrix 4 6) in
  let q = Graph.linear g ~name:"q" ~out_features:6 x in
  let k = Graph.linear g ~name:"k" ~out_features:6 x in
  let v = Graph.linear g ~name:"v" ~out_features:6 x in
  let scores = Graph.matmul g ~transpose_b:true q k in
  let probs = Graph.softmax g scores in
  let ctx = Graph.matmul g probs v in
  let res = Graph.add g ctx x in
  let gl = Graph.gelu g res in
  ignore (Graph.output g gl);
  grad_check g ~seed:5

let test_autodiff_embedding () =
  let g = Graph.create ~name:"emb" ~dtype:Precision.Fp32 in
  let ids = Graph.input g ~name:"ids" (Shape.matrix 2 3) in
  let e = Graph.embedding g ~name:"table" ~vocab_size:7 ~hidden:4 ids in
  let fl = Graph.reshape g [ 6; 4 ] e in
  let fc = Graph.linear g ~name:"fc" ~out_features:2 fl in
  ignore (Graph.output g fc);
  let params = Eval.random_params ~seed:9 g in
  let inputs =
    [ ("ids", Tensor.of_array (Shape.matrix 2 3) [| 0.; 3.; 6.; 1.; 3.; 2. |]) ]
  in
  let grads = Autodiff.backward g params ~inputs () in
  let table_grad = List.assoc "table" grads.Autodiff.param_grads in
  (* row 3 was used twice: its gradient must be the accumulated one; a
     never-used row (5) stays zero *)
  let row_norm r =
    let acc = ref 0. in
    for j = 0 to 3 do
      acc := !acc +. Float.abs (Tensor.get table_grad [| r; j |])
    done;
    !acc
  in
  Alcotest.(check bool) "used row has gradient" true (row_norm 3 > 0.);
  Alcotest.(check (float 0.)) "unused row zero" 0. (row_norm 5);
  (* and finite differences agree *)
  List.iter
    (fun idx ->
      let analytic = Tensor.get_flat table_grad idx in
      let numeric =
        Autodiff.numeric_param_grad g params ~inputs ~param:"table" ~index:idx ()
      in
      Alcotest.(check (float 1e-3)) "fd matches" numeric analytic)
    [ 12; 13; 14; 15 ]

let test_autodiff_input_grad_shape () =
  let g = Graph.create ~name:"ig" ~dtype:Precision.Fp32 in
  let x = Graph.input g ~name:"x" (Shape.matrix 2 3) in
  let fc = Graph.linear g ~name:"fc" ~out_features:4 x in
  ignore (Graph.output g fc);
  let params = Eval.random_params g in
  let rng = Prng.create ~seed:3 in
  let inputs = [ ("x", Tensor.random rng (Shape.matrix 2 3)) ] in
  let grads = Autodiff.backward g params ~inputs () in
  match grads.Autodiff.input_grads with
  | [ ("x", gx) ] ->
    Alcotest.(check string) "same shape as x" "[2x3]"
      (Shape.to_string (Tensor.shape gx))
  | _ -> Alcotest.fail "one input gradient expected"

let autodiff_random_cnn_prop =
  QCheck.Test.make ~count:8 ~name:"gradient check on random small CNNs"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let g = Graph.create ~name:"rand" ~dtype:Precision.Fp32 in
      let x = ref (Graph.input g ~name:"x" (Shape.nchw ~n:1 ~c:2 ~h:5 ~w:5)) in
      for i = 0 to 1 do
        let cout = 2 + Prng.int rng ~bound:2 in
        x :=
          Graph.conv2d g
            ~name:(Printf.sprintf "c%d" i)
            ~cout ~k:3 ~padding:1 !x;
        x := Graph.relu g !x
      done;
      let gp = Graph.global_avg_pool g !x in
      let fc = Graph.linear g ~name:"fc" ~out_features:3 gp in
      ignore (Graph.output g fc);
      try
        grad_check g ~seed;
        true
      with _ -> false)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "nn"
    [
      ( "graph",
        [
          Alcotest.test_case "builder shapes" `Quick test_builder_shapes;
          Alcotest.test_case "forward refs" `Quick test_builder_rejects_forward_refs;
          Alcotest.test_case "output required" `Quick
            test_graph_without_output_invalid;
          Alcotest.test_case "matmul inference" `Quick test_matmul_shape_inference;
          Alcotest.test_case "concat" `Quick test_concat;
        ] );
      ( "zoo",
        [
          Alcotest.test_case "all models validate" `Quick test_zoo_validates;
          Alcotest.test_case "resnet50 macs" `Quick test_resnet50_macs;
          Alcotest.test_case "mobilenet macs" `Quick test_mobilenet_macs;
          Alcotest.test_case "vgg macs" `Quick test_vgg_macs;
          Alcotest.test_case "bert params" `Quick test_bert_params;
          Alcotest.test_case "bert seq scaling" `Quick test_bert_macs_scale_with_seq;
          Alcotest.test_case "batch scaling" `Quick test_batch_scaling;
          Alcotest.test_case "siamese structure" `Quick test_siamese_structure;
          Alcotest.test_case "upsample op" `Quick test_upsample;
          Alcotest.test_case "fpn structure" `Quick test_fpn_structure;
          Alcotest.test_case "wide&deep structure" `Quick test_wide_deep_structure;
        ] );
      ( "workload",
        [
          Alcotest.test_case "depthwise on vector" `Quick test_depthwise_on_vector;
          Alcotest.test_case "conv gemm dims" `Quick test_conv_gemm_dims;
          Alcotest.test_case "attention batch" `Quick test_attention_gemm_batch;
          q workload_nonnegative_prop;
        ] );
      ( "training",
        [
          Alcotest.test_case "backward doubles gemm" `Quick
            test_backward_doubles_gemm;
          Alcotest.test_case "training heavier" `Quick
            test_training_heavier_than_inference;
        ] );
      ( "eval",
        [
          Alcotest.test_case "small cnn" `Quick test_eval_small_cnn;
          Alcotest.test_case "conv matches reference" `Quick
            test_eval_conv_matches_reference;
          Alcotest.test_case "missing input" `Quick test_eval_missing_input;
          Alcotest.test_case "tiny bert" `Quick test_eval_bert_tiny;
        ] );
      ( "quantized",
        [
          Alcotest.test_case "int8 close" `Quick test_quantized_int8_close;
          Alcotest.test_case "int4 degrades" `Quick
            test_quantized_int4_degrades_more;
          Alcotest.test_case "rejects float" `Quick test_quantized_rejects_float;
        ] );
      ( "autodiff",
        [
          Alcotest.test_case "linear+sigmoid" `Quick test_autodiff_linear;
          Alcotest.test_case "conv+pool" `Quick test_autodiff_conv_pool;
          Alcotest.test_case "strided/grouped conv" `Quick
            test_autodiff_strided_grouped_conv;
          Alcotest.test_case "norms+softmax" `Quick
            test_autodiff_norms_and_softmax;
          Alcotest.test_case "attention" `Quick test_autodiff_attention;
          Alcotest.test_case "embedding scatter" `Quick test_autodiff_embedding;
          Alcotest.test_case "input grads" `Quick test_autodiff_input_grad_shape;
          q autodiff_random_cnn_prop;
        ] );
    ]
