open Ascend.Tbe
module Tensor = Ascend.Tensor.Tensor
module Shape = Ascend.Tensor.Shape
module Ops = Ascend.Tensor.Ops
module Prng = Ascend.Util.Prng
module Config = Ascend.Arch.Config

let t1 data = Tensor.of_array (Shape.vector (Array.length data)) data

(* ------------------------------------------------------------------ *)
(* Expr                                                               *)

let test_eval_scalar () =
  let e = Expr.(Add (Mul (x0, x0), Const 1.)) in
  Alcotest.(check (float 1e-12)) "x^2+1 at 3" 10. (Expr.eval_scalar e [| 3. |]);
  Alcotest.(check int) "arity" 1 (Expr.arity e);
  Alcotest.(check int) "passes" 2 (Expr.passes e)

let test_eval_tensorwise () =
  let e = Expr.(Max (x0, x1)) in
  let a = t1 [| 1.; 5.; -2. |] and b = t1 [| 3.; 2.; -7. |] in
  let out = Expr.eval e [ a; b ] in
  Alcotest.(check (float 0.)) "max0" 3. (Tensor.get_flat out 0);
  Alcotest.(check (float 0.)) "max1" 5. (Tensor.get_flat out 1);
  Alcotest.(check (float 0.)) "max2" (-2.) (Tensor.get_flat out 2)

let test_eval_errors () =
  let e = Expr.(Add (x0, x1)) in
  Alcotest.(check bool) "missing input raises" true
    (try
       ignore (Expr.eval e [ t1 [| 1. |] ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "shape mismatch raises" true
    (try
       ignore (Expr.eval e [ t1 [| 1. |]; t1 [| 1.; 2. |] ]);
       false
     with Invalid_argument _ -> true)

let sigmoid_matches_reference =
  QCheck.Test.make ~count:100 ~name:"DSL sigmoid == Ops.sigmoid"
    QCheck.(float_range (-10.) 10.)
    (fun x ->
      let dsl = Expr.eval_scalar (Expr.sigmoid Expr.x0) [| x |] in
      let reference = Tensor.get_flat (Ops.sigmoid (t1 [| x |])) 0 in
      Float.abs (dsl -. reference) < 1e-12)

let gelu_matches_reference =
  QCheck.Test.make ~count:100 ~name:"DSL gelu == Ops.gelu"
    QCheck.(float_range (-10.) 10.)
    (fun x ->
      let dsl = Expr.eval_scalar (Expr.gelu_tanh Expr.x0) [| x |] in
      let reference = Tensor.get_flat (Ops.gelu (t1 [| x |])) 0 in
      Float.abs (dsl -. reference) < 1e-9)

let test_operators_sugar () =
  let e = Expr.(x0 + (x1 * c 2.)) in
  Alcotest.(check (float 1e-12)) "1 + 3*2" 7. (Expr.eval_scalar e [| 1.; 3. |])

let test_pp () =
  let s = Format.asprintf "%a" Expr.pp Expr.(Relu (x0 - c 1.)) in
  Alcotest.(check string) "pretty" "(relu (x0 - 1))" s

(* ------------------------------------------------------------------ *)
(* Kernel lowering                                                    *)

let test_kernel_program_validates () =
  let k =
    Kernel.make ~name:"gelu" ~expr:(Expr.gelu_tanh Expr.x0) ~elems:100_000 ()
  in
  List.iter
    (fun config ->
      if Ascend.Arch.Config.supports config Ascend.Arch.Precision.Fp16 then begin
        let p = Kernel.to_program config k in
        match Ascend.Isa.Program.validate config p with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: %s" config.Config.name e
      end)
    Config.all

let test_kernel_simulates () =
  let k =
    Kernel.make ~name:"axpy" ~expr:Expr.(x0 + (x1 * c 3.)) ~elems:65536 ()
  in
  match Kernel.simulate Config.max k with
  | Error e -> Alcotest.fail e
  | Ok r ->
    Alcotest.(check bool) "vector cycles present" true
      ((Ascend.Core_sim.Simulator.pipe_stats r Ascend.Isa.Pipe.Vector)
         .Ascend.Core_sim.Simulator.busy_cycles
      > 0);
    (* no cube work in an elementwise kernel *)
    Alcotest.(check int) "no cube work" 0
      (Ascend.Core_sim.Simulator.pipe_stats r Ascend.Isa.Pipe.Cube)
        .Ascend.Core_sim.Simulator.busy_cycles

let test_estimate_tracks_simulation () =
  let k =
    Kernel.make ~name:"relu" ~expr:(Expr.Relu Expr.x0) ~elems:1_000_000 ()
  in
  match Kernel.simulate Config.max k with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let est = Kernel.estimated_cycles Config.max k in
    let sim = r.Ascend.Core_sim.Simulator.total_cycles in
    Alcotest.(check bool) "within 4x" true
      (float_of_int sim /. float_of_int est < 4.
      && float_of_int est /. float_of_int sim < 4.)

let test_kernel_run_numeric () =
  let k = Kernel.make ~name:"square" ~expr:Expr.(x0 * x0) ~elems:8 () in
  let rng = Prng.create ~seed:1 in
  let x = Tensor.random rng (Shape.vector 8) in
  let y = Kernel.run k [ x ] in
  for i = 0 to 7 do
    Alcotest.(check (float 1e-12)) "squared"
      (Tensor.get_flat x i *. Tensor.get_flat x i)
      (Tensor.get_flat y i)
  done

let test_kernel_bad_elems () =
  Alcotest.(check bool) "0 elems raises" true
    (try
       ignore (Kernel.make ~name:"x" ~expr:Expr.x0 ~elems:0 ());
       false
     with Invalid_argument _ -> true)

let deeper_expr_costs_more_prop =
  (* below ~3 passes the kernel is streaming-bound (the MTE pipes hide
     the vector work), so monotonicity in passes only holds once the
     vector unit is the bottleneck *)
  QCheck.Test.make ~count:20 ~name:"more passes, more simulated cycles"
    QCheck.(int_range 3 8)
    (fun depth ->
      let rec build d = if d = 0 then Expr.x0 else Expr.Relu (build (d - 1)) in
      let cycles d =
        let k = Kernel.make ~name:"d" ~expr:(build d) ~elems:500_000 () in
        match Kernel.simulate Config.max k with
        | Ok r -> r.Ascend.Core_sim.Simulator.total_cycles
        | Error _ -> -1
      in
      cycles depth <= cycles (depth + 1))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "tbe"
    [
      ( "expr",
        [
          Alcotest.test_case "eval scalar" `Quick test_eval_scalar;
          Alcotest.test_case "eval tensor" `Quick test_eval_tensorwise;
          Alcotest.test_case "errors" `Quick test_eval_errors;
          Alcotest.test_case "operators" `Quick test_operators_sugar;
          Alcotest.test_case "pp" `Quick test_pp;
          q sigmoid_matches_reference;
          q gelu_matches_reference;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "program validates" `Quick
            test_kernel_program_validates;
          Alcotest.test_case "simulates" `Quick test_kernel_simulates;
          Alcotest.test_case "estimate tracks sim" `Quick
            test_estimate_tracks_simulation;
          Alcotest.test_case "numeric run" `Quick test_kernel_run_numeric;
          Alcotest.test_case "bad elems" `Quick test_kernel_bad_elems;
          q deeper_expr_costs_more_prop;
        ] );
    ]
