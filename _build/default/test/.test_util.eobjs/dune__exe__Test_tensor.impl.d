test/test_tensor.ml: Alcotest Array Ascend Float Layout List Ops QCheck QCheck_alcotest Quantize Shape Tensor
