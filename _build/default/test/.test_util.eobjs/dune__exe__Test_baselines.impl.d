test/test_baselines.ml: Alcotest Ascend Cpu Dataflow List QCheck QCheck_alcotest Simt_gpu Systolic
