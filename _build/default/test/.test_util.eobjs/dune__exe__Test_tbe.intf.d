test/test_tbe.mli:
