test/test_noc.ml: Alcotest Ascend Deflection Fat_tree List Mesh QCheck QCheck_alcotest Ring
