test/test_runtime.ml: Alcotest Ascend Hashtbl List Printf QCheck QCheck_alcotest Scheduler
