test/test_arch.ml: Alcotest Ascend Config Float Precision QCheck QCheck_alcotest Silicon
