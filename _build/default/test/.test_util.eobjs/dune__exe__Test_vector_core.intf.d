test/test_vector_core.mli:
