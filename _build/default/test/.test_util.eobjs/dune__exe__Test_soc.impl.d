test/test_soc.ml: Alcotest Ascend Automotive_soc Dvpp Float Inference_soc List Llc_trace Mobile_soc Printf Training_soc
