test/test_cluster.ml: Alcotest Ascend Collective Float List QCheck QCheck_alcotest Server Training
