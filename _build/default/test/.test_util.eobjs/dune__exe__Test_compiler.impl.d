test/test_compiler.ml: Alcotest Ascend Codegen Engine Fusion Graph_engine List Memory_planner Operator_lib Printf QCheck QCheck_alcotest Tiling
