test/test_memory.ml: Alcotest Array Ascend Dram Float Gen List Llc Memory_wall Mpam QCheck QCheck_alcotest
