test/test_tbe.ml: Alcotest Array Ascend Expr Float Format Kernel List QCheck QCheck_alcotest
