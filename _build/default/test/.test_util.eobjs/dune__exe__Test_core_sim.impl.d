test/test_core_sim.ml: Alcotest Ascend Buffer_id Instruction Latency List Pipe Program QCheck QCheck_alcotest Simulator String Timeline
