test/test_isa.ml: Alcotest Ascend Buffer_id Bytes Encoding Format Instruction List Pipe Printf Program QCheck QCheck_alcotest String
