test/test_vector_core.ml: Alcotest Array Ascend Float Gen Kmeans List Printf QCheck QCheck_alcotest Quaternion Simplex Slam_pipeline Sort Stereo
