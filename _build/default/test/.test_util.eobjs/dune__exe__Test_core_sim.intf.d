test/test_core_sim.mli:
