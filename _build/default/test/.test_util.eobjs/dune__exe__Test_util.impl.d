test/test_util.ml: Alcotest Array Ascend Fairness Float Format Fp16 Gen List Prng QCheck QCheck_alcotest Stats String Table Units
