open Ascend.Memory

(* ------------------------------------------------------------------ *)
(* LLC                                                                *)

let test_llc_geometry () =
  let c = Llc.create ~line_bytes:64 ~ways:4 ~capacity_bytes:(64 * 4 * 128) () in
  Alcotest.(check int) "sets" 128 (Llc.sets c);
  Alcotest.(check int) "capacity" (64 * 4 * 128) (Llc.capacity_bytes c)

let test_llc_hits_after_fill () =
  let c = Llc.create ~line_bytes:64 ~ways:4 ~capacity_bytes:(64 * 1024) () in
  (* working set of half the capacity: second pass all hits *)
  for i = 0 to 511 do
    ignore (Llc.access c ~addr:(i * 64) ~write:false)
  done;
  Llc.reset_stats c;
  for i = 0 to 511 do
    ignore (Llc.access c ~addr:(i * 64) ~write:false)
  done;
  Alcotest.(check (float 1e-9)) "all hits" 1.0 (Llc.hit_rate c)

let test_llc_thrashes_when_oversized () =
  let c = Llc.create ~line_bytes:64 ~ways:4 ~capacity_bytes:(64 * 256) () in
  (* working set 4x capacity, streamed twice in the same order: LRU
     evicts ahead of reuse, so the second pass misses everything *)
  for _pass = 1 to 2 do
    for i = 0 to 1023 do
      ignore (Llc.access c ~addr:(i * 64) ~write:false)
    done
  done;
  Alcotest.(check bool) "mostly misses" true (Llc.hit_rate c < 0.05)

let test_llc_access_range () =
  let c = Llc.create ~line_bytes:128 ~ways:16 ~capacity_bytes:(1024 * 1024) () in
  let hits, misses = Llc.access_range c ~addr:0 ~bytes:1280 ~write:false in
  Alcotest.(check int) "10 lines missed" 10 misses;
  Alcotest.(check int) "no hits yet" 0 hits;
  let hits2, misses2 = Llc.access_range c ~addr:0 ~bytes:1280 ~write:true in
  Alcotest.(check int) "10 hits" 10 hits2;
  Alcotest.(check int) "no misses" 0 misses2

let llc_capacity_monotone_prop =
  QCheck.Test.make ~count:20 ~name:"hit rate monotone in capacity"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Ascend.Util.Prng.create ~seed in
      let addrs =
        Array.init 2000 (fun _ -> Ascend.Util.Prng.int rng ~bound:(1 lsl 20))
      in
      let rate cap =
        let c = Llc.create ~capacity_bytes:cap () in
        Array.iter (fun a -> ignore (Llc.access c ~addr:a ~write:false)) addrs;
        Llc.hit_rate c
      in
      rate (64 * 1024) <= rate (1024 * 1024) +. 1e-9)

let test_hit_fraction_model () =
  Alcotest.(check (float 1e-9)) "fits" 1.0
    (Llc.hit_fraction ~capacity_bytes:100 ~working_set_bytes:50);
  Alcotest.(check (float 1e-9)) "half" 0.5
    (Llc.hit_fraction ~capacity_bytes:50 ~working_set_bytes:100);
  Alcotest.(check (float 1e-9)) "empty set" 1.0
    (Llc.hit_fraction ~capacity_bytes:0 ~working_set_bytes:0)

(* ------------------------------------------------------------------ *)
(* Memory wall (Table 6)                                              *)

let test_table6_ladder () =
  let rungs = Memory_wall.table6 ~peak_flops:256e12 in
  Alcotest.(check int) "seven rungs" 7 (List.length rungs);
  (match rungs with
  | cube :: l0 :: l1 :: llc :: hbm :: _ ->
    Alcotest.(check (float 1.)) "cube demand 2048 TB/s" 2048e12
      cube.Memory_wall.bandwidth_bytes_per_s;
    Alcotest.(check (float 1e-9)) "L0 ratio 1" 1. l0.Memory_wall.ratio_to_cube;
    Alcotest.(check (float 1e-9)) "L1 ratio 1/10" 0.1 l1.Memory_wall.ratio_to_cube;
    Alcotest.(check (float 1e-9)) "LLC ratio 1/100" 0.01
      llc.Memory_wall.ratio_to_cube;
    (* HBM at 1 TB/s is ~1/2000 of the cube demand *)
    Alcotest.(check bool) "HBM ratio near 1/2000" true
      (Float.abs ((1. /. hbm.Memory_wall.ratio_to_cube) -. 2048.) < 1.)
  | _ -> Alcotest.fail "ladder shape");
  let last = List.nth rungs 6 in
  Alcotest.(check bool) "inter-server ~1/200000" true
    (1. /. last.Memory_wall.ratio_to_cube > 100000.)

let test_reuse_factor () =
  let rungs = Memory_wall.table6 ~peak_flops:256e12 in
  let l0 = List.nth rungs 1 and l1 = List.nth rungs 2 in
  Alcotest.(check (float 1e-6)) "10x reuse between L0 and L1" 10.
    (Memory_wall.required_reuse_factor ~upper:l0 ~lower:l1)

(* ------------------------------------------------------------------ *)
(* MPAM                                                               *)

let spec name min_share max_share priority =
  { Mpam.class_name = name; min_share; max_share; priority }

let test_mpam_minimum_guaranteed () =
  let allocs =
    Mpam.partition ~total_bandwidth:100.
      [
        (spec "critical" 0.5 0.8 3, 60.);
        (spec "background" 0.0 1.0 0, 1000.);
      ]
  in
  let critical = List.hd allocs in
  Alcotest.(check bool) "critical gets at least its min" true
    (critical.Mpam.granted >= 50.)

let test_mpam_priority_order () =
  let allocs =
    Mpam.partition ~total_bandwidth:100.
      [
        (spec "high" 0.0 1.0 2, 80.);
        (spec "low" 0.0 1.0 1, 80.);
      ]
  in
  match allocs with
  | [ high; low ] ->
    Alcotest.(check (float 1e-6)) "high fully served" 80. high.Mpam.granted;
    Alcotest.(check (float 1e-6)) "low gets the rest" 20. low.Mpam.granted
  | _ -> Alcotest.fail "two allocations"

let test_mpam_work_conserving () =
  (* caps don't waste bandwidth when someone still wants it *)
  let allocs =
    Mpam.partition ~total_bandwidth:100.
      [
        (spec "capped" 0.0 0.3 2, 90.);
        (spec "hungry" 0.0 0.4 1, 90.);
      ]
  in
  let total = List.fold_left (fun a x -> a +. x.Mpam.granted) 0. allocs in
  Alcotest.(check bool) "all bandwidth used" true (total > 99.9)

let test_mpam_rejects_bad_specs () =
  Alcotest.(check bool) "min > max raises" true
    (try
       ignore
         (Mpam.partition ~total_bandwidth:1. [ (spec "x" 0.5 0.2 0, 1.) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "mins over 1 raise" true
    (try
       ignore
         (Mpam.partition ~total_bandwidth:1.
            [ (spec "a" 0.7 0.8 0, 1.); (spec "b" 0.7 0.8 0, 1.) ]);
       false
     with Invalid_argument _ -> true)

let mpam_feasible_prop =
  QCheck.Test.make ~count:100 ~name:"mpam never over-allocates"
    QCheck.(pair (float_range 0. 0.24) (list_of_size (Gen.int_range 1 4)
      (float_range 0. 200.)))
    (fun (min_share, demands) ->
      let specs =
        List.mapi
          (fun i d -> (spec (string_of_int i) min_share 1.0 i, d))
          demands
      in
      let allocs = Mpam.partition ~total_bandwidth:100. specs in
      let total = List.fold_left (fun a x -> a +. x.Mpam.granted) 0. allocs in
      total <= 100. +. 1e-6
      && List.for_all (fun x -> x.Mpam.granted <= x.Mpam.demand +. 1e-6) allocs)

let test_latency_factor () =
  Alcotest.(check (float 1e-9)) "idle" 1. (Mpam.latency_factor ~utilization:0.);
  Alcotest.(check bool) "half load modest" true
    (Mpam.latency_factor ~utilization:0.5 < 2.);
  Alcotest.(check bool) "saturated clamped" true
    (Mpam.latency_factor ~utilization:1.5 <= 50.)

(* ------------------------------------------------------------------ *)
(* DRAM                                                               *)

let test_dram () =
  Alcotest.(check (float 1e-3)) "HBM 1.2 TB/s" 1.2e12
    (Dram.total_bandwidth Dram.hbm2_ascend910);
  let a = Dram.share Dram.hbm2_ascend910 ~demands:[| 1e12; 1e12 |] in
  Alcotest.(check (float 1e6)) "fair halves" 0.6e12 a.(0);
  Alcotest.(check bool) "latency inflates" true
    (Dram.loaded_latency_ns Dram.hbm2_ascend910 ~utilization:0.9
    > Dram.hbm2_ascend910.Dram.base_latency_ns)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "memory"
    [
      ( "llc",
        [
          Alcotest.test_case "geometry" `Quick test_llc_geometry;
          Alcotest.test_case "hits after fill" `Quick test_llc_hits_after_fill;
          Alcotest.test_case "thrashing" `Quick test_llc_thrashes_when_oversized;
          Alcotest.test_case "range" `Quick test_llc_access_range;
          Alcotest.test_case "hit fraction model" `Quick test_hit_fraction_model;
          q llc_capacity_monotone_prop;
        ] );
      ( "memory-wall",
        [
          Alcotest.test_case "table6 ladder" `Quick test_table6_ladder;
          Alcotest.test_case "reuse factor" `Quick test_reuse_factor;
        ] );
      ( "mpam",
        [
          Alcotest.test_case "minimum guaranteed" `Quick
            test_mpam_minimum_guaranteed;
          Alcotest.test_case "priority order" `Quick test_mpam_priority_order;
          Alcotest.test_case "work conserving" `Quick test_mpam_work_conserving;
          Alcotest.test_case "bad specs" `Quick test_mpam_rejects_bad_specs;
          Alcotest.test_case "latency factor" `Quick test_latency_factor;
          q mpam_feasible_prop;
        ] );
      ("dram", [ Alcotest.test_case "hbm" `Quick test_dram ]);
    ]
