open Ascend.Vector_core
module Config = Ascend.Arch.Config
module Prng = Ascend.Util.Prng

let checkf = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Quaternion                                                         *)

let test_quat_identity () =
  let q = Quaternion.identity in
  checkf "norm 1" 1. (Quaternion.norm q);
  let v = (1., 2., 3.) in
  let x, y, z = Quaternion.rotate q v in
  checkf "rot x" 1. x;
  checkf "rot y" 2. y;
  checkf "rot z" 3. z

let test_quat_axis_rotation () =
  (* 90 degrees around z maps x-axis to y-axis *)
  let q = Quaternion.of_axis_angle ~axis:(0., 0., 1.) ~angle:(Float.pi /. 2.) in
  let x, y, z = Quaternion.rotate q (1., 0., 0.) in
  Alcotest.(check (float 1e-12)) "x -> 0" 0. x;
  Alcotest.(check (float 1e-12)) "y -> 1" 1. y;
  Alcotest.(check (float 1e-12)) "z -> 0" 0. z

let test_quat_mul_composes () =
  let qa = Quaternion.of_axis_angle ~axis:(0., 0., 1.) ~angle:0.7 in
  let qb = Quaternion.of_axis_angle ~axis:(0., 0., 1.) ~angle:0.5 in
  let composed = Quaternion.mul qa qb in
  let direct = Quaternion.of_axis_angle ~axis:(0., 0., 1.) ~angle:1.2 in
  Alcotest.(check bool) "angles add" true
    (Quaternion.approx_equal ~tol:1e-12 composed direct)

let test_quat_conjugate_inverts () =
  let q = Quaternion.of_axis_angle ~axis:(1., 2., -1.) ~angle:0.9 in
  let round = Quaternion.mul q (Quaternion.conjugate q) in
  Alcotest.(check bool) "q q* = 1" true
    (Quaternion.approx_equal ~tol:1e-12 round Quaternion.identity)

let test_quat_slerp_endpoints () =
  let a = Quaternion.of_axis_angle ~axis:(0., 1., 0.) ~angle:0.3 in
  let b = Quaternion.of_axis_angle ~axis:(0., 1., 0.) ~angle:1.3 in
  Alcotest.(check bool) "t=0 -> a" true
    (Quaternion.approx_equal ~tol:1e-9 (Quaternion.slerp a b 0.) a);
  Alcotest.(check bool) "t=1 -> b" true
    (Quaternion.approx_equal ~tol:1e-9 (Quaternion.slerp a b 1.) b);
  let mid = Quaternion.slerp a b 0.5 in
  let expect = Quaternion.of_axis_angle ~axis:(0., 1., 0.) ~angle:0.8 in
  Alcotest.(check bool) "t=0.5 halfway" true
    (Quaternion.approx_equal ~tol:1e-9 mid expect)

let quat_rotation_preserves_norm =
  QCheck.Test.make ~count:200 ~name:"rotation preserves vector norm"
    QCheck.(quad (float_range (-1.) 1.) (float_range (-1.) 1.)
              (float_range (-1.) 1.) (float_range 0.01 6.))
    (fun (x, y, z, angle) ->
      QCheck.assume (Float.abs x +. Float.abs y +. Float.abs z > 0.01);
      let q = Quaternion.of_axis_angle ~axis:(x, y, z) ~angle in
      let vx, vy, vz = (0.3, -1.7, 2.2) in
      let rx, ry, rz = Quaternion.rotate q (vx, vy, vz) in
      let n v1 v2 v3 = sqrt ((v1 *. v1) +. (v2 *. v2) +. (v3 *. v3)) in
      Float.abs (n rx ry rz -. n vx vy vz) < 1e-9)

let test_quat_matrix_agrees () =
  let q = Quaternion.of_axis_angle ~axis:(1., 1., 0.) ~angle:0.8 in
  let m = Quaternion.to_rotation_matrix q in
  let v = (0.5, -0.25, 1.0) in
  let qx, qy, qz = Quaternion.rotate q v in
  let vx, vy, vz = v in
  let mx = (m.(0).(0) *. vx) +. (m.(0).(1) *. vy) +. (m.(0).(2) *. vz) in
  let my = (m.(1).(0) *. vx) +. (m.(1).(1) *. vy) +. (m.(1).(2) *. vz) in
  let mz = (m.(2).(0) *. vx) +. (m.(2).(1) *. vy) +. (m.(2).(2) *. vz) in
  Alcotest.(check (float 1e-12)) "mx" qx mx;
  Alcotest.(check (float 1e-12)) "my" qy my;
  Alcotest.(check (float 1e-12)) "mz" qz mz

let test_quat_cycles () =
  let c = Quaternion.batched_mul_cycles Config.standard ~count:1000 in
  Alcotest.(check bool) "positive and sane" true (c > 0 && c < 100000);
  Alcotest.(check bool) "more work, more cycles" true
    (Quaternion.batched_mul_cycles Config.standard ~count:10000 > c)

(* ------------------------------------------------------------------ *)
(* Sort                                                               *)

let bitonic_sorts_prop =
  QCheck.Test.make ~count:200 ~name:"bitonic sort sorts any array"
    QCheck.(list_of_size (Gen.int_range 0 130) (float_range (-100.) 100.))
    (fun xs ->
      let a = Array.of_list xs in
      Sort.bitonic_sort a;
      let sorted = Array.of_list xs in
      Array.sort compare sorted;
      a = sorted)

let test_bitonic_passes () =
  Alcotest.(check int) "n=1" 0 (Sort.bitonic_passes 1);
  Alcotest.(check int) "n=2" 1 (Sort.bitonic_passes 2);
  Alcotest.(check int) "n=1024: 10*11/2" 55 (Sort.bitonic_passes 1024)

let test_top_k () =
  let a = [| 5.; 1.; 9.; 3.; 7. |] in
  Alcotest.(check (array (float 0.))) "top 3" [| 9.; 7.; 5. |]
    (Sort.top_k a ~k:3);
  Alcotest.(check (array (float 0.))) "k over length" [| 9.; 7.; 5.; 3.; 1. |]
    (Sort.top_k a ~k:10)

let test_sort_cycles_scale () =
  let c n = Sort.sort_cycles Config.standard ~n in
  Alcotest.(check bool) "grows superlinearly" true
    (c 4096 > 2 * c 1024)

(* ------------------------------------------------------------------ *)
(* Stereo                                                             *)

let textured_scene =
  Stereo.image_of_fn ~width:48 ~height:16 (fun ~x ~y ->
      let fx = float_of_int x and fy = float_of_int y in
      sin (fx *. 0.9) +. cos (fy *. 1.3) +. (0.1 *. fx) +. sin (fx *. fy *. 0.05))

let test_stereo_recovers_disparity () =
  let d_true = 4 in
  let right = Stereo.shift_scene textured_scene ~disparity:d_true in
  let map =
    Stereo.disparity_map ~window:5 ~max_disparity:8 ~left:textured_scene
      ~right ()
  in
  (* count correct pixels away from the clamped borders *)
  let w = 48 and h = 16 in
  let correct = ref 0 and total = ref 0 in
  for y = 3 to h - 4 do
    for x = 8 to w - 4 do
      incr total;
      if map.((y * w) + x) = d_true then incr correct
    done
  done;
  Alcotest.(check bool) "over 90% correct" true
    (float_of_int !correct /. float_of_int !total > 0.9)

let test_stereo_zero_disparity () =
  let map =
    Stereo.disparity_map ~window:3 ~max_disparity:4 ~left:textured_scene
      ~right:textured_scene ()
  in
  Alcotest.(check bool) "identical images -> all zeros" true
    (Array.for_all (fun d -> d = 0) map)

let test_stereo_errors () =
  Alcotest.(check bool) "even window rejected" true
    (try
       ignore
         (Stereo.disparity_map ~window:4 ~left:textured_scene
            ~right:textured_scene ());
       false
     with Invalid_argument _ -> true)

let test_stereo_cycles () =
  let c =
    Stereo.disparity_cycles Config.standard ~width:640 ~height:480 ~window:5
      ~max_disparity:16
  in
  (* 640x480, 25-tap window, 17 disparities on 128 lanes: ~milliseconds *)
  Alcotest.(check bool) "order of magnitude" true
    (c > 1_000_000 && c < 100_000_000)

(* ------------------------------------------------------------------ *)
(* K-means                                                            *)

let blob rng ~cx ~cy ~n =
  List.init n (fun _ ->
      [| cx +. Prng.gaussian rng ~mu:0. ~sigma:0.2;
         cy +. Prng.gaussian rng ~mu:0. ~sigma:0.2 |])

let test_kmeans_separates_blobs () =
  let rng = Prng.create ~seed:5 in
  let points =
    Array.of_list
      (blob rng ~cx:0. ~cy:0. ~n:40
      @ blob rng ~cx:10. ~cy:0. ~n:40
      @ blob rng ~cx:0. ~cy:10. ~n:40)
  in
  let r = Kmeans.fit ~points ~k:3 () in
  (* all three blob centres recovered within 0.5 *)
  List.iter
    (fun (cx, cy) ->
      let found =
        Array.exists
          (fun c ->
            Float.abs (c.(0) -. cx) < 0.5 && Float.abs (c.(1) -. cy) < 0.5)
          r.Kmeans.centroids
      in
      Alcotest.(check bool)
        (Printf.sprintf "centre (%.0f,%.0f) found" cx cy)
        true found)
    [ (0., 0.); (10., 0.); (0., 10.) ];
  (* same-blob points share a cluster *)
  let a0 = r.Kmeans.assignment.(0) in
  Alcotest.(check bool) "blob 1 together" true
    (Array.for_all (fun i -> i = a0)
       (Array.sub r.Kmeans.assignment 0 40))

let test_kmeans_k_equals_n () =
  let points = [| [| 0. |]; [| 5. |]; [| 9. |] |] in
  let r = Kmeans.fit ~points ~k:3 () in
  Alcotest.(check (float 1e-9)) "zero inertia" 0. r.Kmeans.inertia

let kmeans_inertia_decreases_with_k =
  QCheck.Test.make ~count:20 ~name:"inertia non-increasing in k"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let points =
        Array.init 30 (fun _ ->
            [| Prng.uniform rng ~lo:0. ~hi:10.;
               Prng.uniform rng ~lo:0. ~hi:10. |])
      in
      let inertia k = (Kmeans.fit ~points ~k ~seed ()).Kmeans.inertia in
      inertia 5 <= inertia 2 +. 1e-6)

let test_kmeans_errors () =
  Alcotest.(check bool) "k=0 rejected" true
    (try
       ignore (Kmeans.fit ~points:[| [| 1. |] |] ~k:0 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Simplex                                                            *)

let test_simplex_basic () =
  (* max 3x + 2y st x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj 12 *)
  match
    Simplex.solve ~c:[| 3.; 2. |]
      ~a:[| [| 1.; 1. |]; [| 1.; 3. |] |]
      ~b:[| 4.; 6. |]
  with
  | Ok (Simplex.Optimal { objective; x }) ->
    checkf "objective" 12. objective;
    checkf "x" 4. x.(0);
    checkf "y" 0. x.(1)
  | Ok Simplex.Unbounded -> Alcotest.fail "not unbounded"
  | Error e -> Alcotest.fail e

let test_simplex_interior_optimum () =
  (* max x + y st x <= 2, y <= 3, x + y <= 4 -> obj 4 on the face *)
  match
    Simplex.solve ~c:[| 1.; 1. |]
      ~a:[| [| 1.; 0. |]; [| 0.; 1. |]; [| 1.; 1. |] |]
      ~b:[| 2.; 3.; 4. |]
  with
  | Ok (Simplex.Optimal { objective; x }) ->
    checkf "objective" 4. objective;
    Alcotest.(check bool) "feasible" true
      (x.(0) <= 2. +. 1e-9 && x.(1) <= 3. +. 1e-9
      && x.(0) +. x.(1) <= 4. +. 1e-9)
  | Ok Simplex.Unbounded -> Alcotest.fail "not unbounded"
  | Error e -> Alcotest.fail e

let test_simplex_unbounded () =
  match Simplex.solve ~c:[| 1. |] ~a:[| [| -1. |] |] ~b:[| 1. |] with
  | Ok Simplex.Unbounded -> ()
  | Ok (Simplex.Optimal _) -> Alcotest.fail "must be unbounded"
  | Error e -> Alcotest.fail e

let test_simplex_rejects_bad_input () =
  (match Simplex.solve ~c:[| 1. |] ~a:[| [| 1. |] |] ~b:[| -1. |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative b must be rejected");
  match Simplex.solve ~c:[| 1.; 2. |] ~a:[| [| 1. |] |] ~b:[| 1. |] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ragged A must be rejected"

let simplex_feasible_prop =
  QCheck.Test.make ~count:100 ~name:"simplex solutions are feasible"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let n = 2 + Prng.int rng ~bound:3 in
      let m = 2 + Prng.int rng ~bound:3 in
      let c = Array.init n (fun _ -> Prng.uniform rng ~lo:0. ~hi:5.) in
      let a =
        Array.init m (fun _ ->
            Array.init n (fun _ -> Prng.uniform rng ~lo:0.1 ~hi:3.))
      in
      let b = Array.init m (fun _ -> Prng.uniform rng ~lo:1. ~hi:10.) in
      match Simplex.solve ~c ~a ~b with
      | Ok (Simplex.Optimal { x; objective }) ->
        let feasible =
          Array.for_all (fun v -> v >= -1e-7) x
          && Array.for_all2
               (fun row bi ->
                 let lhs = ref 0. in
                 Array.iteri (fun j v -> lhs := !lhs +. (v *. x.(j))) row;
                 !lhs <= bi +. 1e-6)
               a b
        in
        let obj_check =
          let v = ref 0. in
          Array.iteri (fun j cv -> v := !v +. (cv *. x.(j))) c;
          Float.abs (!v -. objective) < 1e-6
        in
        feasible && obj_check && objective >= -1e-9
      | Ok Simplex.Unbounded -> false (* positive-A problems are bounded *)
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* SLAM pipeline                                                      *)

let test_slam_profile () =
  let p =
    Slam_pipeline.profile_frame ~width:320 ~height:240 ~features:2000
      ~landmarks:500 ()
  in
  Alcotest.(check bool) "stereo dominates" true
    (p.Slam_pipeline.stereo_cycles > p.Slam_pipeline.feature_sort_cycles);
  Alcotest.(check bool) "all components counted" true
    (p.Slam_pipeline.total_cycles
    = p.Slam_pipeline.stereo_cycles + p.Slam_pipeline.feature_sort_cycles
      + p.Slam_pipeline.pose_update_cycles + p.Slam_pipeline.clustering_cycles
      + p.Slam_pipeline.lp_check_cycles);
  (* a QVGA SLAM front end sustains real-time rates on the vector core *)
  Alcotest.(check bool) "at least 30 fps" true
    (p.Slam_pipeline.sustainable_fps > 30.)

let test_vector_core_config () =
  let c = Slam_pipeline.vector_core_config in
  Alcotest.(check int) "no cube MACs" 1 (Config.cube_macs c);
  Alcotest.(check int) "keeps the 256B vector" 256 c.Config.vector_width_bytes

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "vector_core"
    [
      ( "quaternion",
        [
          Alcotest.test_case "identity" `Quick test_quat_identity;
          Alcotest.test_case "axis rotation" `Quick test_quat_axis_rotation;
          Alcotest.test_case "mul composes" `Quick test_quat_mul_composes;
          Alcotest.test_case "conjugate inverts" `Quick
            test_quat_conjugate_inverts;
          Alcotest.test_case "slerp" `Quick test_quat_slerp_endpoints;
          Alcotest.test_case "matrix agrees" `Quick test_quat_matrix_agrees;
          Alcotest.test_case "cycle model" `Quick test_quat_cycles;
          q quat_rotation_preserves_norm;
        ] );
      ( "sort",
        [
          Alcotest.test_case "passes" `Quick test_bitonic_passes;
          Alcotest.test_case "top_k" `Quick test_top_k;
          Alcotest.test_case "cycles scale" `Quick test_sort_cycles_scale;
          q bitonic_sorts_prop;
        ] );
      ( "stereo",
        [
          Alcotest.test_case "recovers disparity" `Quick
            test_stereo_recovers_disparity;
          Alcotest.test_case "zero disparity" `Quick test_stereo_zero_disparity;
          Alcotest.test_case "errors" `Quick test_stereo_errors;
          Alcotest.test_case "cycle model" `Quick test_stereo_cycles;
        ] );
      ( "kmeans",
        [
          Alcotest.test_case "separates blobs" `Quick test_kmeans_separates_blobs;
          Alcotest.test_case "k = n" `Quick test_kmeans_k_equals_n;
          Alcotest.test_case "errors" `Quick test_kmeans_errors;
          q kmeans_inertia_decreases_with_k;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "basic" `Quick test_simplex_basic;
          Alcotest.test_case "face optimum" `Quick test_simplex_interior_optimum;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "bad input" `Quick test_simplex_rejects_bad_input;
          q simplex_feasible_prop;
        ] );
      ( "slam",
        [
          Alcotest.test_case "frame profile" `Quick test_slam_profile;
          Alcotest.test_case "vector core config" `Quick
            test_vector_core_config;
        ] );
    ]
