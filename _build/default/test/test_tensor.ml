open Ascend.Tensor
module Precision = Ascend.Arch.Precision
module Prng = Ascend.Util.Prng

let shape l = Shape.of_list l

(* ------------------------------------------------------------------ *)
(* Shape                                                              *)

let test_shape_basics () =
  let s = shape [ 2; 3; 4 ] in
  Alcotest.(check int) "numel" 24 (Shape.numel s);
  Alcotest.(check int) "rank" 3 (Shape.rank s);
  Alcotest.(check int) "dim" 3 (Shape.dim s 1);
  Alcotest.(check int) "negative dim" 4 (Shape.dim s (-1));
  Alcotest.(check string) "to_string" "[2x3x4]" (Shape.to_string s);
  Alcotest.(check (array int)) "strides" [| 12; 4; 1 |] (Shape.strides s);
  Alcotest.(check int) "ravel" 23 (Shape.ravel_index s [| 1; 2; 3 |]);
  Alcotest.(check int) "scalar numel" 1 (Shape.numel Shape.scalar);
  Alcotest.(check int) "fp16 bytes" 48 (Shape.bytes s ~dtype:Precision.Fp16);
  Alcotest.(check int) "int4 bytes" 12 (Shape.bytes s ~dtype:Precision.Int4)

let test_shape_errors () =
  Alcotest.check_raises "negative dim"
    (Invalid_argument "Shape.of_list: negative dimension") (fun () ->
      ignore (shape [ 2; -1 ]));
  Alcotest.check_raises "ravel out of bounds"
    (Invalid_argument "Shape.ravel_index: index out of bounds") (fun () ->
      ignore (Shape.ravel_index (shape [ 2; 2 ]) [| 0; 2 |]))

(* ------------------------------------------------------------------ *)
(* Tensor                                                             *)

let test_tensor_basics () =
  let t = Tensor.init (shape [ 2; 3 ]) (fun i -> float_of_int ((i.(0) * 10) + i.(1))) in
  Alcotest.(check (float 0.)) "get" 12. (Tensor.get t [| 1; 2 |]);
  Tensor.set t [| 0; 1 |] 42.;
  Alcotest.(check (float 0.)) "set" 42. (Tensor.get t [| 0; 1 |]);
  let tr = Tensor.transpose t in
  Alcotest.(check (float 0.)) "transpose" 12. (Tensor.get tr [| 2; 1 |]);
  let r = Tensor.reshape t (shape [ 3; 2 ]) in
  Alcotest.(check (float 0.)) "reshape flat order" 42. (Tensor.get r [| 0; 1 |])

let test_tensor_cast () =
  let t = Tensor.of_array (shape [ 4 ]) [| 0.3; -200.; 150.; 1.0 |] in
  let i8 = Tensor.cast t Precision.Int8 in
  Alcotest.(check (float 0.)) "round" 0. (Tensor.get_flat i8 0);
  Alcotest.(check (float 0.)) "clamp low" (-128.) (Tensor.get_flat i8 1);
  Alcotest.(check (float 0.)) "clamp high" 127. (Tensor.get_flat i8 2);
  let f16 = Tensor.cast t Precision.Fp16 in
  Alcotest.(check (float 1e-4)) "fp16 0.3" 0.30004882 (Tensor.get_flat f16 0)

let test_tensor_arith () =
  let a = Tensor.full (shape [ 3 ]) 2. and b = Tensor.full (shape [ 3 ]) 3. in
  Alcotest.(check (float 0.)) "add" 5. (Tensor.get_flat (Tensor.add a b) 0);
  Alcotest.(check (float 0.)) "mul" 6. (Tensor.get_flat (Tensor.mul a b) 0);
  Alcotest.(check (float 0.)) "scale" 4. (Tensor.get_flat (Tensor.scale 2. a) 0);
  Alcotest.(check bool) "equal_approx" true
    (Tensor.equal_approx a (Tensor.scale (2. /. 3.) b) ~tol:1e-12)

(* ------------------------------------------------------------------ *)
(* Ops: golden identities                                             *)

let rand_tensor rng s = Tensor.random rng (shape s)

let test_matmul () =
  let a = Tensor.of_array (shape [ 2; 2 ]) [| 1.; 2.; 3.; 4. |] in
  let b = Tensor.of_array (shape [ 2; 2 ]) [| 5.; 6.; 7.; 8. |] in
  let c = Ops.matmul a b in
  Alcotest.(check (float 0.)) "c00" 19. (Tensor.get c [| 0; 0 |]);
  Alcotest.(check (float 0.)) "c11" 50. (Tensor.get c [| 1; 1 |])

let test_matmul_mixed_rounds_sources () =
  let a = Tensor.of_array (shape [ 1; 1 ]) [| 1. /. 3. |] in
  let b = Tensor.of_array (shape [ 1; 1 ]) [| 3. |] in
  let exact = Tensor.get (Ops.matmul a b) [| 0; 0 |] in
  let mixed = Tensor.get (Ops.matmul_mixed a b) [| 0; 0 |] in
  Alcotest.(check (float 1e-12)) "exact" 1. exact;
  Alcotest.(check (float 1e-12)) "mixed uses rounded source"
    (Ascend.Util.Fp16.round_float (1. /. 3.) *. 3.)
    mixed

let conv_equiv_case ~n ~cin ~cout ~hw ~k ~stride ~padding ~seed =
  let rng = Prng.create ~seed in
  let x = rand_tensor rng [ n; cin; hw; hw ] in
  let w = rand_tensor rng [ cout; cin; k; k ] in
  let params = { Ops.stride; padding; groups = 1 } in
  let direct = Ops.conv2d ~params x w in
  let gemm = Ops.conv2d_via_gemm ~params x w in
  Tensor.max_abs_diff direct gemm < 1e-9

let img2col_gemm_prop =
  QCheck.Test.make ~count:30 ~name:"img2col+GEMM == direct convolution"
    QCheck.(quad (int_range 1 2) (int_range 1 4) (int_range 1 3) (int_range 0 1000))
    (fun (n, cin, k, seed) ->
      conv_equiv_case ~n ~cin ~cout:3 ~hw:(k + 4) ~k ~stride:1 ~padding:0 ~seed)

let img2col_gemm_strided_prop =
  QCheck.Test.make ~count:30
    ~name:"img2col+GEMM == direct convolution (stride/padding)"
    QCheck.(pair (int_range 1 2) (int_range 0 1000))
    (fun (stride_minus_1, seed) ->
      conv_equiv_case ~n:1 ~cin:3 ~cout:4 ~hw:8 ~k:3
        ~stride:(stride_minus_1 + 1) ~padding:1 ~seed)

let test_depthwise_conv_via_gemm () =
  let rng = Prng.create ~seed:3 in
  let x = rand_tensor rng [ 1; 4; 6; 6 ] in
  let w = rand_tensor rng [ 4; 1; 3; 3 ] in
  let params = { Ops.stride = 1; padding = 1; groups = 4 } in
  let direct = Ops.conv2d ~params x w in
  let gemm = Ops.conv2d_via_gemm ~params x w in
  Alcotest.(check bool) "equal" true (Tensor.max_abs_diff direct gemm < 1e-9)

let test_conv_output_hw () =
  Alcotest.(check (pair int int)) "resnet stem" (112, 112)
    (Ops.conv_output_hw ~h:224 ~w:224 ~kh:7 ~kw:7 ~stride:2 ~padding:3);
  Alcotest.check_raises "empty output"
    (Invalid_argument "Ops.conv_output_hw: empty output") (fun () ->
      ignore (Ops.conv_output_hw ~h:2 ~w:2 ~kh:5 ~kw:5 ~stride:1 ~padding:0))

let test_pooling () =
  let x = Tensor.of_array (shape [ 1; 1; 2; 2 ]) [| 1.; 2.; 3.; 4. |] in
  let mx = Ops.max_pool2d x ~kernel:2 ~stride:2 in
  Alcotest.(check (float 0.)) "max" 4. (Tensor.get mx [| 0; 0; 0; 0 |]);
  let av = Ops.avg_pool2d x ~kernel:2 ~stride:2 in
  Alcotest.(check (float 0.)) "avg" 2.5 (Tensor.get av [| 0; 0; 0; 0 |]);
  let g = Ops.global_avg_pool x in
  Alcotest.(check (float 0.)) "gap" 2.5 (Tensor.get g [| 0; 0 |])

let test_activations () =
  let x = Tensor.of_array (shape [ 3 ]) [| -1.; 0.5; 10. |] in
  let r = Ops.relu x in
  Alcotest.(check (float 0.)) "relu clips" 0. (Tensor.get_flat r 0);
  let r6 = Ops.relu6 x in
  Alcotest.(check (float 0.)) "relu6 caps" 6. (Tensor.get_flat r6 2);
  let s = Ops.sigmoid (Tensor.of_array (shape [ 1 ]) [| 0. |]) in
  Alcotest.(check (float 1e-12)) "sigmoid(0)" 0.5 (Tensor.get_flat s 0);
  let g = Ops.gelu (Tensor.of_array (shape [ 1 ]) [| 0. |]) in
  Alcotest.(check (float 1e-12)) "gelu(0)" 0. (Tensor.get_flat g 0)

let softmax_props =
  QCheck.Test.make ~count:50 ~name:"softmax rows sum to 1 and are positive"
    QCheck.(pair (int_range 1 5) (int_range 0 1000))
    (fun (rows, seed) ->
      let rng = Prng.create ~seed in
      let x = rand_tensor rng [ rows; 7 ] in
      let s = Ops.softmax x in
      let ok = ref true in
      for r = 0 to rows - 1 do
        let sum = ref 0. in
        for c = 0 to 6 do
          let v = Tensor.get s [| r; c |] in
          if v < 0. then ok := false;
          sum := !sum +. v
        done;
        if Float.abs (!sum -. 1.) > 1e-9 then ok := false
      done;
      !ok)

let layer_norm_props =
  QCheck.Test.make ~count:50 ~name:"layer_norm rows have mean 0 variance 1"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let x = rand_tensor rng [ 3; 64 ] in
      let y = Ops.layer_norm x in
      let ok = ref true in
      for r = 0 to 2 do
        let vals = List.init 64 (fun c -> Tensor.get y [| r; c |]) in
        let m = Ascend.Util.Stats.mean vals in
        let sd = Ascend.Util.Stats.stddev vals in
        if Float.abs m > 1e-6 || Float.abs (sd -. 1.) > 1e-2 then ok := false
      done;
      !ok)

let test_bias_add () =
  let x = Tensor.full (shape [ 1; 2; 2; 2 ]) 1. in
  let b = Tensor.of_array (shape [ 2 ]) [| 10.; 20. |] in
  let y = Ops.bias_add x b in
  Alcotest.(check (float 0.)) "channel 0" 11. (Tensor.get y [| 0; 0; 1; 1 |]);
  Alcotest.(check (float 0.)) "channel 1" 21. (Tensor.get y [| 0; 1; 0; 0 |])

(* ------------------------------------------------------------------ *)
(* Layout                                                             *)

let layout_roundtrip_prop =
  QCheck.Test.make ~count:30 ~name:"NCHW -> NC1HWC0 -> NCHW roundtrip"
    QCheck.(pair (int_range 1 40) (int_range 0 1000))
    (fun (c, seed) ->
      let rng = Prng.create ~seed in
      let x = rand_tensor rng [ 2; c; 3; 3 ] in
      let back = Layout.nc1hwc0_to_nchw ~c (Layout.nchw_to_nc1hwc0 x) in
      Tensor.max_abs_diff x back = 0.)

let fracz_roundtrip_prop =
  QCheck.Test.make ~count:30 ~name:"OIHW -> FracZ -> OIHW roundtrip"
    QCheck.(pair (pair (int_range 1 40) (int_range 1 40)) (int_range 0 1000))
    (fun ((cout, cin), seed) ->
      let rng = Prng.create ~seed in
      let w = rand_tensor rng [ cout; cin; 3; 3 ] in
      let back =
        Layout.fracz_to_weights ~cout ~cin ~kh:3 ~kw:3 (Layout.weights_to_fracz w)
      in
      Tensor.max_abs_diff w back = 0.)

let test_layout_c0 () =
  Alcotest.(check int) "fp16 c0" 16 (Layout.c0 ~dtype:Precision.Fp16);
  Alcotest.(check int) "int8 c0" 32 (Layout.c0 ~dtype:Precision.Int8);
  Alcotest.(check int) "padded bytes" (16 * 4 * 4 * 2)
    (Layout.padded_channel_bytes ~c:3 ~h:4 ~w:4 ~dtype:Precision.Fp16)

(* ------------------------------------------------------------------ *)
(* Quantize                                                           *)

let quantize_error_prop =
  QCheck.Test.make ~count:100 ~name:"int8 round-trip error <= scale/2"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let t = rand_tensor rng [ 64 ] in
      let p = Quantize.calibrate ~dtype:Precision.Int8 t in
      Quantize.max_round_trip_error p t <= (p.Quantize.scale /. 2.) +. 1e-12)

let quantize_int4_worse_prop =
  QCheck.Test.make ~count:50 ~name:"int4 scale coarser than int8"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let t = rand_tensor rng [ 64 ] in
      let p8 = Quantize.calibrate ~dtype:Precision.Int8 t in
      let p4 = Quantize.calibrate ~dtype:Precision.Int4 t in
      p4.Quantize.scale >= p8.Quantize.scale)

let test_quantize_symmetric () =
  let t = Tensor.of_array (shape [ 3 ]) [| -1.; 0.; 2. |] in
  let p = Quantize.calibrate ~dtype:Precision.Int8 t in
  Alcotest.(check int) "zero point" 0 p.Quantize.zero_point;
  let q = Quantize.quantize p t in
  Alcotest.(check (float 0.)) "max maps to qmax" 127. (Tensor.get_flat q 2);
  let d = Quantize.dequantize p q in
  Alcotest.(check (float 1e-6)) "max restored" 2. (Tensor.get_flat d 2)

let test_quantize_asymmetric () =
  let t = Tensor.of_array (shape [ 2 ]) [| 0.; 10. |] in
  let p = Quantize.calibrate ~symmetric:false ~dtype:Precision.Int8 t in
  let rt = Quantize.round_trip p t in
  Alcotest.(check (float 0.05)) "0 restored" 0. (Tensor.get_flat rt 0);
  Alcotest.(check (float 0.05)) "10 restored" 10. (Tensor.get_flat rt 1)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "tensor"
    [
      ( "shape",
        [
          Alcotest.test_case "basics" `Quick test_shape_basics;
          Alcotest.test_case "errors" `Quick test_shape_errors;
        ] );
      ( "tensor",
        [
          Alcotest.test_case "basics" `Quick test_tensor_basics;
          Alcotest.test_case "cast" `Quick test_tensor_cast;
          Alcotest.test_case "arith" `Quick test_tensor_arith;
        ] );
      ( "ops",
        [
          Alcotest.test_case "matmul" `Quick test_matmul;
          Alcotest.test_case "mixed precision" `Quick
            test_matmul_mixed_rounds_sources;
          Alcotest.test_case "depthwise gemm" `Quick test_depthwise_conv_via_gemm;
          Alcotest.test_case "conv output hw" `Quick test_conv_output_hw;
          Alcotest.test_case "pooling" `Quick test_pooling;
          Alcotest.test_case "activations" `Quick test_activations;
          Alcotest.test_case "bias add" `Quick test_bias_add;
          q img2col_gemm_prop;
          q img2col_gemm_strided_prop;
          q softmax_props;
          q layer_norm_props;
        ] );
      ( "layout",
        [
          Alcotest.test_case "c0" `Quick test_layout_c0;
          q layout_roundtrip_prop;
          q fracz_roundtrip_prop;
        ] );
      ( "quantize",
        [
          Alcotest.test_case "symmetric" `Quick test_quantize_symmetric;
          Alcotest.test_case "asymmetric" `Quick test_quantize_asymmetric;
          q quantize_error_prop;
          q quantize_int4_worse_prop;
        ] );
    ]
