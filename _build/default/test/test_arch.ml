open Ascend.Arch

let within ~tol expected actual =
  Float.abs (actual -. expected) <= tol *. Float.abs expected

let check_within name ~tol expected actual =
  if not (within ~tol expected actual) then
    Alcotest.failf "%s: expected ~%g, got %g" name expected actual

(* ------------------------------------------------------------------ *)
(* Config: the Table 5 design points                                   *)

let test_table5_cube_perf () =
  let fpc c = Config.flops_per_cycle c ~precision:c.Config.native_precision in
  Alcotest.(check int) "Max 8192 FLOPS/cycle" 8192 (fpc Config.max);
  Alcotest.(check int) "Ascend 8192" 8192 (fpc Config.standard);
  Alcotest.(check int) "Mini 8192" 8192 (fpc Config.mini);
  Alcotest.(check int) "Lite 2048" 2048 (fpc Config.lite);
  Alcotest.(check int) "Tiny 1024 int8" 1024 (fpc Config.tiny)

let test_table5_vector_width () =
  Alcotest.(check int) "Max 256B" 256 Config.max.Config.vector_width_bytes;
  Alcotest.(check int) "Lite 128B" 128 Config.lite.Config.vector_width_bytes;
  Alcotest.(check int) "Tiny 32B" 32 Config.tiny.Config.vector_width_bytes

let test_table5_bandwidths () =
  (* 4 TB/s A, 2 TB/s B and UB at 1 GHz *)
  Alcotest.(check int) "Max A port" 4096 Config.max.Config.bandwidth.l1_to_l0a;
  Alcotest.(check int) "Max B port" 2048 Config.max.Config.bandwidth.l1_to_l0b;
  Alcotest.(check int) "Max UB port" 2048 Config.max.Config.bandwidth.ub_port;
  (* 768 GB/s at 0.75 GHz = 1024 B/cycle *)
  Alcotest.(check int) "Lite A port" 1024 Config.lite.Config.bandwidth.l1_to_l0a;
  (* LLC bandwidth per core, Table 5 last column *)
  (match Config.max.Config.bandwidth.llc_gb_s with
  | Some v -> check_within "910 LLC/core" ~tol:1e-9 94. v
  | None -> Alcotest.fail "Max must have an LLC");
  (match Config.tiny.Config.bandwidth.llc_gb_s with
  | None -> ()
  | Some _ -> Alcotest.fail "Tiny has no LLC")

let test_peak_flops () =
  check_within "Max 8.192 TFLOPS fp16" ~tol:1e-6 8.192e12
    (Config.peak_flops Config.max ~precision:Precision.Fp16);
  check_within "Lite 1.536 TFLOPS fp16" ~tol:1e-6 1.536e12
    (Config.peak_flops Config.lite ~precision:Precision.Fp16);
  check_within "Tiny 768 GOPS int8" ~tol:1e-6 0.768e12
    (Config.peak_flops Config.tiny ~precision:Precision.Int8);
  check_within "Max int8 doubles" ~tol:1e-6 16.384e12
    (Config.peak_flops Config.max ~precision:Precision.Int8);
  (* int4 only on the automotive part *)
  check_within "Standard int4 quadruples" ~tol:1e-6 32.768e12
    (Config.peak_flops Config.standard ~precision:Precision.Int4);
  check_within "Max int4 unsupported" ~tol:1e-9 0.
    (Config.peak_flops Config.max ~precision:Precision.Int4)

let test_cube_dims_at () =
  let d = Config.cube_dims_at Config.max ~precision:Precision.Int8 in
  (* 16x16x16 fp16 extends to 16x32x16 at int8 (paper §2.1) *)
  Alcotest.(check int) "int8 k doubles" 32 d.Config.k;
  Alcotest.(check int) "m unchanged" 16 d.Config.m;
  let d4 = Config.cube_dims_at Config.standard ~precision:Precision.Int4 in
  Alcotest.(check int) "int4 k quadruples" 64 d4.Config.k;
  Alcotest.check_raises "fp16 on Tiny rejected"
    (Invalid_argument "Config.cube_dims_at: fp16 unsupported on Ascend-Tiny")
    (fun () -> ignore (Config.cube_dims_at Config.tiny ~precision:Precision.Fp16))

let test_cube_tile_cycles () =
  Alcotest.(check int) "one tile"
    1
    (Config.cube_tile_cycles Config.max ~m:16 ~k:16 ~n:16 ());
  Alcotest.(check int) "partial tiles round up"
    8
    (Config.cube_tile_cycles Config.max ~m:17 ~k:17 ~n:17 ());
  Alcotest.(check int) "Lite m granularity 4"
    2
    (Config.cube_tile_cycles Config.lite ~m:8 ~k:16 ~n:16 ())

let test_precision () =
  Alcotest.(check int) "int4 bits" 4 (Precision.size_bits Precision.Int4);
  Alcotest.(check bool) "int4 half byte" true
    (Precision.size_bytes Precision.Int4 = 0.5);
  Alcotest.(check bool) "fp16 accumulates fp32" true
    (Precision.equal (Precision.accumulator Precision.Fp16) Precision.Fp32);
  Alcotest.(check bool) "int8 accumulates int32" true
    (Precision.equal (Precision.accumulator Precision.Int8) Precision.Int32)

(* ------------------------------------------------------------------ *)
(* Silicon: Tables 3 and 4                                             *)

let test_table3_vector () =
  let v = Silicon.vector_unit ~width_bytes:256 ~frequency_ghz:1.0 in
  check_within "vector 256 GFLOPS" ~tol:1e-6 256e9 v.Silicon.perf_flops;
  (match v.Silicon.power_w with
  | Some w -> check_within "vector 0.46 W" ~tol:0.01 0.46 w
  | None -> Alcotest.fail "vector has power");
  check_within "vector 0.70 mm2" ~tol:0.01 0.70 v.Silicon.area_mm2;
  (match v.Silicon.perf_per_watt with
  | Some p -> check_within "0.56 TFLOPS/W" ~tol:0.02 0.556 p
  | None -> Alcotest.fail "vector perf/W");
  check_within "0.36 TFLOPS/mm2" ~tol:0.02 0.366 v.Silicon.perf_per_area

let test_table3_cube () =
  let c = Silicon.cube_unit { Config.m = 16; k = 16; n = 16 } ~frequency_ghz:1.0 in
  (* the paper rounds 8192 GFLOPS to "8T" *)
  check_within "cube 8.192 TFLOPS" ~tol:1e-6 8.192e12 c.Silicon.perf_flops;
  (match c.Silicon.power_w with
  | Some w -> check_within "cube 3.13 W" ~tol:0.01 3.13 w
  | None -> Alcotest.fail "cube has power");
  check_within "cube 2.57 mm2" ~tol:0.01 2.57 c.Silicon.area_mm2;
  (match c.Silicon.perf_per_watt with
  | Some p -> check_within "2.56 TFLOPS/W" ~tol:0.03 2.56 p
  | None -> Alcotest.fail "cube perf/W");
  check_within "3.11 TFLOPS/mm2" ~tol:0.03 3.11 c.Silicon.perf_per_area

let test_table3_order_of_magnitude () =
  (* the paper's headline: the cube improves both perf/W and perf/mm2 by
     about an order of magnitude over the vector unit *)
  let v = Silicon.vector_unit ~width_bytes:256 ~frequency_ghz:1.0 in
  let c = Silicon.cube_unit { Config.m = 16; k = 16; n = 16 } ~frequency_ghz:1.0 in
  let ppw r = match r.Silicon.perf_per_watt with Some x -> x | None -> 0. in
  Alcotest.(check bool) "perf/W gain > 4x" true (ppw c /. ppw v > 4.);
  Alcotest.(check bool) "perf/mm2 gain > 8x" true
    (c.Silicon.perf_per_area /. v.Silicon.perf_per_area > 8.)

let test_table4 () =
  match Silicon.table4 with
  | [ small; big ] ->
    check_within "8x 4x4x4 area 5.2" ~tol:0.02 5.2 small.Silicon.area_mm2;
    check_within "8x 4x4x4 perf 1.7T" ~tol:0.02 1.7e12 small.Silicon.fp16_flops;
    check_within "16^3 area 13.2" ~tol:0.02 13.2 big.Silicon.area_mm2;
    check_within "16^3 perf 8T" ~tol:0.02 8e12 big.Silicon.fp16_flops;
    check_within "330 GFLOPS/mm2" ~tol:0.05 330. small.Silicon.gflops_per_mm2;
    check_within "600 GFLOPS/mm2" ~tol:0.05 600. big.Silicon.gflops_per_mm2;
    (* the paper's conclusion: 4.7x perf for 2.5x area *)
    check_within "4.7x throughput" ~tol:0.05 4.7
      (big.Silicon.fp16_flops /. small.Silicon.fp16_flops);
    check_within "2.5x area" ~tol:0.05 2.54
      (big.Silicon.area_mm2 /. small.Silicon.area_mm2)
  | _ -> Alcotest.fail "table4 must have two design points"

let test_tiny_power_envelope () =
  (* paper §3.2: Tiny's typical power is ~300 mW *)
  let p =
    Silicon.core_power_w Config.tiny ~cube_utilization:0.7
      ~vector_utilization:0.3
  in
  Alcotest.(check bool) "within 0.15..0.5 W" true (p > 0.15 && p < 0.5)

let test_core_area_monotone () =
  let a v = Silicon.core_area_mm2 v in
  Alcotest.(check bool) "tiny < lite" true (a Config.tiny < a Config.lite);
  Alcotest.(check bool) "lite < max" true (a Config.lite < a Config.max);
  Alcotest.(check bool) "max core under 10 mm2" true (a Config.max < 10.)

let cube_power_monotone_prop =
  QCheck.Test.make ~count:100 ~name:"cube power grows with dimensions"
    QCheck.(pair (int_range 1 5) (int_range 1 5))
    (fun (a, b) ->
      let small = min a b * 4 and big = max a b * 4 + 4 in
      let p d = Silicon.cube_power_w { Config.m = d; k = d; n = d } ~frequency_ghz:1. in
      p small < p big)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "arch"
    [
      ( "config-table5",
        [
          Alcotest.test_case "cube perf" `Quick test_table5_cube_perf;
          Alcotest.test_case "vector width" `Quick test_table5_vector_width;
          Alcotest.test_case "bandwidths" `Quick test_table5_bandwidths;
          Alcotest.test_case "peak flops" `Quick test_peak_flops;
          Alcotest.test_case "cube dims at precision" `Quick test_cube_dims_at;
          Alcotest.test_case "tile cycles" `Quick test_cube_tile_cycles;
          Alcotest.test_case "precision" `Quick test_precision;
        ] );
      ( "silicon",
        [
          Alcotest.test_case "table3 vector row" `Quick test_table3_vector;
          Alcotest.test_case "table3 cube row" `Quick test_table3_cube;
          Alcotest.test_case "table3 order of magnitude" `Quick
            test_table3_order_of_magnitude;
          Alcotest.test_case "table4 cube trade-off" `Quick test_table4;
          Alcotest.test_case "tiny power envelope" `Quick
            test_tiny_power_envelope;
          Alcotest.test_case "core areas" `Quick test_core_area_monotone;
          q cube_power_monotone_prop;
        ] );
    ]
