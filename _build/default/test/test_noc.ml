open Ascend.Noc

(* ------------------------------------------------------------------ *)
(* Mesh (flow level)                                                  *)

let mesh44 = Mesh.create ~rows:4 ~cols:4 ()

let node t r c = Mesh.node t ~row:r ~col:c

let test_xy_route () =
  let route = Mesh.xy_route (node mesh44 0 0) (node mesh44 2 3) in
  Alcotest.(check int) "path length = hops + 1" 6 (List.length route);
  (* X first: the second node moves in the column direction *)
  (match route with
  | _ :: second :: _ ->
    Alcotest.(check int) "x-first row" 0 second.Mesh.row;
    Alcotest.(check int) "x-first col" 1 second.Mesh.col
  | _ -> Alcotest.fail "route too short");
  Alcotest.(check int) "hops" 5 (Mesh.hops (node mesh44 0 0) (node mesh44 2 3))

let test_single_flow_full_bandwidth () =
  let f =
    { Mesh.src = node mesh44 0 0; dst = node mesh44 3 3; demand = 100e9 }
  in
  match Mesh.route_flows mesh44 [ f ] with
  | [ r ] ->
    Alcotest.(check (float 1e-3)) "full demand" 100e9 r.Mesh.throughput;
    Alcotest.(check int) "hops" 6 r.Mesh.hops
  | _ -> Alcotest.fail "one result"

let test_shared_link_split () =
  (* two flows over the same single link share it equally *)
  let a = { Mesh.src = node mesh44 0 0; dst = node mesh44 0 1; demand = 1e12 } in
  let b = { Mesh.src = node mesh44 0 0; dst = node mesh44 0 1; demand = 1e12 } in
  match Mesh.route_flows mesh44 [ a; b ] with
  | [ ra; rb ] ->
    Alcotest.(check (float 1e6)) "half each (256 GB/s link)" 128e9
      ra.Mesh.throughput;
    Alcotest.(check (float 1e6)) "symmetric" ra.Mesh.throughput rb.Mesh.throughput
  | _ -> Alcotest.fail "two results"

let flows_feasible_prop =
  QCheck.Test.make ~count:50 ~name:"flow allocation feasible and demand-capped"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Ascend.Util.Prng.create ~seed in
      let flows =
        List.init 6 (fun _ ->
            let r () = Ascend.Util.Prng.int rng ~bound:4 in
            {
              Mesh.src = node mesh44 (r ()) (r ());
              dst = node mesh44 (r ()) (r ());
              demand = 1e9 *. float_of_int (1 + Ascend.Util.Prng.int rng ~bound:500);
            })
      in
      let rs = Mesh.route_flows mesh44 flows in
      List.for_all
        (fun r ->
          r.Mesh.throughput <= r.Mesh.flow.Mesh.demand +. 1.
          && r.Mesh.throughput >= 0.)
        rs)

let test_ascend910_mesh () =
  Alcotest.(check int) "6 rows" 6 (Mesh.rows Mesh.ascend910);
  Alcotest.(check int) "4 cols" 4 (Mesh.cols Mesh.ascend910);
  (* 1024-bit links at 2 GHz: 256 GB/s *)
  Alcotest.(check (float 1.)) "link bandwidth" 256e9
    (Mesh.link_bandwidth Mesh.ascend910);
  Alcotest.(check (float 1.)) "bisection" (2. *. 6. *. 256e9)
    (Mesh.bisection_bandwidth Mesh.ascend910)

(* ------------------------------------------------------------------ *)
(* Deflection (cycle level)                                           *)

let test_deflection_single_packet () =
  let t = Deflection.create ~rows:4 ~cols:4 in
  Deflection.inject t ~src_row:0 ~src_col:0 ~dst_row:3 ~dst_col:3;
  match Deflection.run t with
  | Ok s ->
    Alcotest.(check int) "delivered" 1 s.Deflection.delivered;
    (* manhattan distance 6: latency at least that *)
    Alcotest.(check bool) "latency >= hops" true
      (s.Deflection.max_latency_cycles >= 6);
    Alcotest.(check int) "no deflections alone" 0 s.Deflection.deflections
  | Error e -> Alcotest.fail e

let test_deflection_all_delivered () =
  let s =
    Deflection.uniform_random_experiment ~rows:4 ~cols:6 ~packets:500 ~seed:1
  in
  Alcotest.(check int) "all 500" 500 s.Deflection.delivered

let test_deflection_contention_increases_latency () =
  let light =
    Deflection.uniform_random_experiment ~rows:4 ~cols:4 ~packets:20 ~seed:2
  in
  let heavy =
    Deflection.uniform_random_experiment ~rows:4 ~cols:4 ~packets:2000 ~seed:2
  in
  Alcotest.(check bool) "heavier load, higher latency" true
    (Deflection.average_latency heavy >= Deflection.average_latency light)

let deflection_delivery_prop =
  QCheck.Test.make ~count:20 ~name:"deflection mesh always delivers"
    QCheck.(pair (int_range 1 200) (int_range 0 1000))
    (fun (packets, seed) ->
      let s =
        Deflection.uniform_random_experiment ~rows:3 ~cols:3 ~packets ~seed
      in
      s.Deflection.delivered = packets)

(* ------------------------------------------------------------------ *)
(* Ring                                                               *)

let test_ring_hops () =
  let r = Ring.create ~nodes:8 () in
  Alcotest.(check int) "adjacent" 1 (Ring.hops r ~src:0 ~dst:1);
  Alcotest.(check int) "wrap" 1 (Ring.hops r ~src:0 ~dst:7);
  Alcotest.(check int) "opposite" 4 (Ring.hops r ~src:0 ~dst:4);
  Alcotest.(check bool) "symmetric" true
    (Ring.hops r ~src:2 ~dst:6 = Ring.hops r ~src:6 ~dst:2)

let test_ring_worst_case () =
  let r = Ring.create ~nodes:8 ~hop_latency_ns:2. () in
  Alcotest.(check (float 1e-9)) "worst case = half ring + 1" 10.
    (Ring.worst_case_latency_ns r)

let test_ring_throughput () =
  let r = Ring.create ~link_bandwidth:10. ~nodes:4 () in
  (* two flows in the same direction over the same link *)
  let rates = Ring.throughput r ~flows:[ (0, 1, 100.); (0, 1, 100.) ] in
  (match rates with
  | [ a; b ] ->
    Alcotest.(check (float 1e-6)) "split" 5. a;
    Alcotest.(check (float 1e-6)) "split" 5. b
  | _ -> Alcotest.fail "two rates");
  (* opposite-direction flows don't contend *)
  let rates2 = Ring.throughput r ~flows:[ (0, 1, 8.); (1, 0, 8.) ] in
  List.iter (fun v -> Alcotest.(check (float 1e-6)) "full" 8. v) rates2

(* ------------------------------------------------------------------ *)
(* Fat tree                                                           *)

let test_fat_tree () =
  let ft = Fat_tree.ascend_cluster in
  Alcotest.(check int) "256 servers" 256 (Fat_tree.servers ft);
  Alcotest.(check int) "16 leaves" 16 (Fat_tree.leaves ft);
  (* 100 Gb/s = 12.5 GB/s *)
  Alcotest.(check (float 1e-3)) "server NIC" 12.5e9
    (Fat_tree.server_bandwidth ft);
  Alcotest.(check (float 1.)) "bisection" (128. *. 12.5e9)
    (Fat_tree.bisection_bandwidth ft);
  Alcotest.(check (float 1e-9)) "same leaf 1us" 1.0
    (Fat_tree.latency_us ft ~src:0 ~dst:5);
  Alcotest.(check (float 1e-9)) "cross leaf 3us" 3.0
    (Fat_tree.latency_us ft ~src:0 ~dst:200)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "noc"
    [
      ( "mesh",
        [
          Alcotest.test_case "xy route" `Quick test_xy_route;
          Alcotest.test_case "single flow" `Quick test_single_flow_full_bandwidth;
          Alcotest.test_case "shared link" `Quick test_shared_link_split;
          Alcotest.test_case "ascend910 mesh" `Quick test_ascend910_mesh;
          q flows_feasible_prop;
        ] );
      ( "deflection",
        [
          Alcotest.test_case "single packet" `Quick test_deflection_single_packet;
          Alcotest.test_case "all delivered" `Quick test_deflection_all_delivered;
          Alcotest.test_case "contention latency" `Quick
            test_deflection_contention_increases_latency;
          q deflection_delivery_prop;
        ] );
      ( "ring",
        [
          Alcotest.test_case "hops" `Quick test_ring_hops;
          Alcotest.test_case "worst case" `Quick test_ring_worst_case;
          Alcotest.test_case "throughput" `Quick test_ring_throughput;
        ] );
      ("fat-tree", [ Alcotest.test_case "shape" `Quick test_fat_tree ]);
    ]
