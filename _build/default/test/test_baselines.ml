open Ascend.Baselines
module Workload = Ascend.Nn.Workload
module Graph = Ascend.Nn.Graph

let resnet18_layers () =
  let g = Ascend.Nn.Resnet.v1_5_18 () in
  List.map (Workload.of_node g) (Graph.nodes g)

(* ------------------------------------------------------------------ *)
(* Systolic array                                                     *)

let test_systolic_peak () =
  (* 4x 128x128 at 0.82 GHz ~ 107 TFLOPS, the paper's "106" *)
  let p = Systolic.peak_flops Systolic.tpu_v3 /. 1e12 in
  Alcotest.(check bool) "105..110 TFLOPS" true (p > 104. && p < 110.)

let test_systolic_fill_drain () =
  let t = Systolic.tpu_v3 in
  (* enough weight tiles to occupy all four MXUs; utilisation then hinges
     on the activation-stream length m versus the fill/drain overhead *)
  let u_small = Systolic.gemm_utilization t ~m:8 ~k:512 ~n:512 in
  let u_large = Systolic.gemm_utilization t ~m:100000 ~k:512 ~n:512 in
  Alcotest.(check bool) "small m wastes the pipeline" true (u_small < 0.1);
  Alcotest.(check bool) "large m fills it" true (u_large > 0.9);
  (* a single weight tile can occupy only one of the four arrays *)
  let u_one_tile = Systolic.gemm_utilization t ~m:100000 ~k:128 ~n:128 in
  Alcotest.(check bool) "one tile caps at a quarter" true
    (u_one_tile < 0.26 && u_one_tile > 0.2)

let test_systolic_normalization_drain () =
  let t = Systolic.tpu_v3 in
  let gemm = [ { Workload.count = 1; m = 4096; k = 512; n = 512 } ] in
  let without =
    Systolic.layer_seconds t ~gemms:gemm ~vector_elems:0. ~bytes:0
  in
  let with_norm =
    Systolic.layer_seconds t ~gemms:gemm ~vector_elems:1000. ~bytes:0
  in
  Alcotest.(check bool) "a normalisation layer costs a drain" true
    (with_norm > without)

let systolic_monotone_prop =
  QCheck.Test.make ~count:100 ~name:"systolic time monotone in m"
    QCheck.(pair (int_range 1 4096) (int_range 1 4096))
    (fun (a, b) ->
      let small = min a b and big = max a b in
      Systolic.gemm_cycles Systolic.tpu_v3 ~m:small ~k:256 ~n:256
      <= Systolic.gemm_cycles Systolic.tpu_v3 ~m:big ~k:256 ~n:256)

(* ------------------------------------------------------------------ *)
(* SIMT GPU                                                           *)

let test_v100_peak () =
  let p = Simt_gpu.peak_tensor_flops Simt_gpu.v100 /. 1e12 in
  Alcotest.(check bool) "~125 TFLOPS" true (p > 122. && p < 128.)

let test_v100_occupancy () =
  let t = Simt_gpu.v100 in
  (* a GEMM too small to fill 80 SMs takes disproportionately long *)
  let tiny = Simt_gpu.gemm_seconds t ~m:64 ~k:64 ~n:64 in
  let per_mac_tiny = tiny /. float_of_int (64 * 64 * 64) in
  let big = Simt_gpu.gemm_seconds t ~m:4096 ~k:4096 ~n:4096 in
  let per_mac_big = big /. (4096. ** 3.) in
  Alcotest.(check bool) "small GEMMs pay occupancy" true
    (per_mac_tiny > 10. *. per_mac_big)

let test_v100_memory_roofline () =
  let t = Simt_gpu.v100 in
  (* a tiny-compute huge-bytes layer is bandwidth bound *)
  let s =
    Simt_gpu.layer_seconds t ~gemms:[] ~vector_elems:1.
      ~bytes:(9 * 1000 * 1000 * 1000)
  in
  Alcotest.(check (float 1e-3)) "10 GB at 900 GB/s" 0.01 s

(* ------------------------------------------------------------------ *)
(* CPU                                                                *)

let test_cpu_peak () =
  let p = Cpu.peak_flops Cpu.xeon_8180 /. 1e12 in
  (* the paper's Table 7 row: 1.5 TFLOPS *)
  Alcotest.(check bool) "1.4..1.6 TFLOPS" true (p > 1.4 && p < 1.6)

let test_ordering_on_resnet () =
  (* the Table 7 qualitative ordering on identical workloads *)
  let layers = resnet18_layers () in
  let v100 = Simt_gpu.network_seconds Simt_gpu.v100 layers in
  let tpu = Systolic.network_seconds Systolic.tpu_v3 layers in
  let cpu = Cpu.network_seconds Cpu.xeon_8180 layers in
  Alcotest.(check bool) "accelerators beat the CPU" true
    (v100 < cpu && tpu < cpu);
  Alcotest.(check bool) "CPU is orders of magnitude behind" true
    (cpu > 20. *. v100)

(* ------------------------------------------------------------------ *)
(* Dataflow                                                           *)

let test_dataflow_no_training () =
  Alcotest.(check bool) "synchronous training unsupported" false
    (Dataflow.training_supported Dataflow.generic_dataflow)

let test_dataflow_latency_vs_throughput () =
  let t = Dataflow.generic_dataflow in
  let layers = resnet18_layers () in
  (* single-sample latency is reconfiguration-dominated; batch amortises *)
  let u1 = Dataflow.utilization t ~layers ~batch:1 in
  let u256 = Dataflow.utilization t ~layers ~batch:256 in
  Alcotest.(check bool) "batch-1 utilisation collapses" true (u1 < 0.3);
  Alcotest.(check bool) "large batch streams near peak" true (u256 > 0.6);
  let lat = Dataflow.single_sample_latency_s t ~layers in
  let reconf =
    float_of_int (List.length layers) *. t.Dataflow.reconfiguration_s
  in
  Alcotest.(check bool) "latency at least the reconfigurations" true
    (lat >= reconf)

let dataflow_batch_monotone_prop =
  QCheck.Test.make ~count:50 ~name:"dataflow utilisation monotone in batch"
    QCheck.(pair (int_range 1 128) (int_range 1 128))
    (fun (a, b) ->
      let layers = resnet18_layers () in
      let u x =
        Dataflow.utilization Dataflow.generic_dataflow ~layers ~batch:x
      in
      u (min a b) <= u (max a b) +. 1e-9)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "baselines"
    [
      ( "systolic",
        [
          Alcotest.test_case "peak" `Quick test_systolic_peak;
          Alcotest.test_case "fill/drain" `Quick test_systolic_fill_drain;
          Alcotest.test_case "normalization drain" `Quick
            test_systolic_normalization_drain;
          q systolic_monotone_prop;
        ] );
      ( "simt-gpu",
        [
          Alcotest.test_case "peak" `Quick test_v100_peak;
          Alcotest.test_case "occupancy" `Quick test_v100_occupancy;
          Alcotest.test_case "memory roofline" `Quick test_v100_memory_roofline;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "peak" `Quick test_cpu_peak;
          Alcotest.test_case "table7 ordering" `Quick test_ordering_on_resnet;
        ] );
      ( "dataflow",
        [
          Alcotest.test_case "no training" `Quick test_dataflow_no_training;
          Alcotest.test_case "latency vs throughput" `Quick
            test_dataflow_latency_vs_throughput;
          q dataflow_batch_monotone_prop;
        ] );
    ]
