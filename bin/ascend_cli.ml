(* Command-line front end to the simulator.

     dune exec bin/ascend_cli.exe -- simulate resnet50 --core max
     dune exec bin/ascend_cli.exe -- profile bert-large --core max --training
     dune exec bin/ascend_cli.exe -- disasm mobilenet --core lite --layer 3
     dune exec bin/ascend_cli.exe -- streams siamese --core standard --cores 4
     dune exec bin/ascend_cli.exe -- trace gesture --core tiny -o trace.json
     dune exec bin/ascend_cli.exe -- list

   Run with no subcommand for the consolidated usage summary. *)

open Cmdliner
module Config = Ascend.Arch.Config
module Engine = Ascend.Compiler.Engine
module Graph = Ascend.Nn.Graph

let models : (string * (batch:int -> Graph.t)) list =
  [
    ("resnet50", fun ~batch -> Ascend.Nn.Resnet.v1_5 ~batch ());
    ("resnet18", fun ~batch -> Ascend.Nn.Resnet.v1_5_18 ~batch ());
    ("mobilenet", fun ~batch -> Ascend.Nn.Mobilenet.v2 ~batch ());
    ("vgg16", fun ~batch -> Ascend.Nn.Vgg.v16 ~batch ());
    ("bert-base", fun ~batch -> Ascend.Nn.Bert.base ~batch ~seq_len:128 ());
    ("bert-large", fun ~batch -> Ascend.Nn.Bert.large ~batch ~seq_len:128 ());
    ("gesture", fun ~batch -> Ascend.Nn.Gesture.build ~batch ());
    ("siamese", fun ~batch -> Ascend.Nn.Siamese.build ~batch ());
    ("wide-deep", fun ~batch -> Ascend.Nn.Wide_deep.default ~batch ());
    ("pointnet", fun ~batch -> Ascend.Nn.Pointnet.build ~batch ());
    ("face-detect", fun ~batch -> Ascend.Nn.Face_detect.build ~batch ());
    ("fpn-detector", fun ~batch -> Ascend.Nn.Fpn_detector.build ~batch ());
    ( "llm-prefill",
      fun ~batch ->
        Ascend.Nn.Llm.prefill ~batch ~seq_len:64 Ascend.Nn.Llm.tiny_config );
    ( "llm-decode",
      fun ~batch ->
        Ascend.Nn.Llm.decode ~batch ~cache_len:128 Ascend.Nn.Llm.tiny_config );
  ]

let cores =
  [
    ("tiny", Config.tiny);
    ("lite", Config.lite);
    ("mini", Config.mini);
    ("standard", Config.standard);
    ("max", Config.max);
  ]

let model_conv =
  let parse s =
    match List.assoc_opt s models with
    | Some f -> Ok f
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown model %s (try: %s)" s
             (String.concat ", " (List.map fst models))))
  in
  Arg.conv (parse, fun ppf _ -> Format.pp_print_string ppf "<model>")

let named_model_conv =
  let parse s =
    match List.assoc_opt s models with
    | Some f -> Ok (s, f)
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown model %s (try: %s)" s
             (String.concat ", " (List.map fst models))))
  in
  Arg.conv (parse, fun ppf (name, _) -> Format.pp_print_string ppf name)

let core_conv =
  let parse s =
    match List.assoc_opt s cores with
    | Some c -> Ok c
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown core %s (try: %s)" s
             (String.concat ", " (List.map fst cores))))
  in
  Arg.conv (parse, fun ppf (c : Config.t) ->
      Format.pp_print_string ppf c.Config.name)

let model_arg =
  Arg.(required & pos 0 (some model_conv) None & info [] ~docv:"MODEL")

let core_arg =
  Arg.(value & opt core_conv Config.max & info [ "core" ] ~docv:"CORE"
         ~doc:"Core version: tiny, lite, mini, standard or max.")

let batch_arg =
  Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc:"Batch size.")

let training_arg =
  Arg.(value & flag & info [ "training" ] ~doc:"Simulate forward + backward.")

let run_model build config ~batch ~training =
  let graph = build ~batch in
  let run = if training then Engine.run_training else Engine.run_inference in
  run config graph

let exit_of = function
  | Ok () -> 0
  | Error e ->
    prerr_endline ("error: " ^ e);
    1

(* --- simulate ----------------------------------------------------- *)

let simulate build config batch training =
  exit_of
    (match run_model build config ~batch ~training with
    | Error _ as e -> e
    | Ok r ->
      Format.printf
        "%s on %s (batch %d%s): %a, %.2f W average, %.3f mJ, %d layers@."
        r.Engine.graph_name config.Config.name batch
        (if training then ", training" else "")
        Ascend.Util.Units.pp_seconds (Engine.seconds r)
        (Engine.average_power_w r)
        (r.Engine.total_energy_j *. 1e3)
        (List.length r.Engine.layers);
      Format.printf "throughput: %.1f items/s@."
        (Engine.inferences_per_second r ~batch);
      Ok ())

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"Compile and simulate a model on one core.")
    Term.(const simulate $ model_arg $ core_arg $ batch_arg $ training_arg)

(* --- profile ------------------------------------------------------ *)

let profile build config batch training =
  exit_of
    (match run_model build config ~batch ~training with
    | Error _ as e -> e
    | Ok r ->
      Format.printf "%a@." Engine.pp_layer_table r;
      Ok ())

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Per-layer cube/vector cycle profile (the paper's Figures 4-8).")
    Term.(const profile $ model_arg $ core_arg $ batch_arg $ training_arg)

(* --- disasm ------------------------------------------------------- *)

let layer_arg =
  Arg.(value & opt int 0 & info [ "layer" ] ~docv:"I" ~doc:"Layer index.")

let disasm build config batch layer =
  exit_of
    (match run_model build config ~batch ~training:false with
    | Error e -> Error e
    | Ok r -> (
      match List.nth_opt r.Engine.layers layer with
      | None ->
        Error (Printf.sprintf "layer %d out of range (0..%d)" layer
                 (List.length r.Engine.layers - 1))
      | Some l ->
        Format.printf "%a@." Ascend.Isa.Program.pp l.Engine.program;
        let instrs = l.Engine.program.Ascend.Isa.Program.instructions in
        Format.printf
          "instruction stream: %d instructions, %d B raw, compression ratio \
           %.2f@."
          (List.length instrs)
          (Bytes.length (Ascend.Isa.Encoding.encode instrs))
          (Ascend.Isa.Encoding.compression_ratio instrs);
        Ok ()))

let disasm_cmd =
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Disassemble the generated program of one fused layer.")
    Term.(const disasm $ model_arg $ core_arg $ batch_arg $ layer_arg)

(* --- streams ------------------------------------------------------ *)

let cores_arg =
  Arg.(value & opt int 2 & info [ "cores" ] ~docv:"N" ~doc:"SoC core count.")

let streams build config batch cores =
  exit_of
    (match
       Ascend.Compiler.Graph_engine.plan config (build ~batch)
     with
    | Error _ as e -> e
    | Ok p ->
      Format.printf "%a@." Ascend.Compiler.Graph_engine.pp p;
      Format.printf
        "serial %d cycles; makespan on %d cores: %d cycles (%.2fx speedup)@."
        (Ascend.Compiler.Graph_engine.serial_cycles p)
        cores
        (Ascend.Compiler.Graph_engine.makespan p ~cores)
        (float_of_int (Ascend.Compiler.Graph_engine.serial_cycles p)
        /. float_of_int (Ascend.Compiler.Graph_engine.makespan p ~cores));
      Ok ())

let streams_cmd =
  Cmd.v
    (Cmd.info "streams"
       ~doc:"Decompose a model into streams (the §5.1 graph engine) and \
             schedule them across cores.")
    Term.(const streams $ model_arg $ core_arg $ batch_arg $ cores_arg)

(* --- serve -------------------------------------------------------- *)

module Serve = Ascend.Serving.Serve
module Load_gen = Ascend.Serving.Load_gen

let serve_models_arg =
  Arg.(
    required
    & pos 0 (some (list named_model_conv)) None
    & info [] ~docv:"MODEL[,MODEL...]"
        ~doc:"Comma-separated list of models to serve concurrently.")

let rate_arg =
  Arg.(
    value
    & opt (list float) [ 100. ]
    & info [ "rate" ] ~docv:"R"
        ~doc:
          "Open-loop arrival rate in requests/s, one value per model (a \
           single value applies to all).")

let duration_arg =
  Arg.(
    value & opt float 1.0
    & info [ "duration" ] ~docv:"S" ~doc:"Load window in simulated seconds.")

let batch_max_arg =
  Arg.(
    value & opt int 8
    & info [ "batch-max" ] ~docv:"B" ~doc:"Dynamic batcher size bound.")

let batch_delay_arg =
  Arg.(
    value & opt float 2.0
    & info [ "batch-delay-ms" ] ~docv:"MS"
        ~doc:"Max time a request may wait for batch peers.")

let queue_depth_arg =
  Arg.(
    value & opt int 64
    & info [ "queue-depth" ] ~docv:"N"
        ~doc:"Admission bound: requests arriving past this queue depth are \
              shed.")

let slo_arg =
  Arg.(
    value
    & opt (list float) [ 50. ]
    & info [ "slo-ms" ] ~docv:"MS"
        ~doc:"Latency SLO per model (a single value applies to all).")

let priority_arg =
  Arg.(
    value
    & opt (list int) [ 0 ]
    & info [ "priority" ] ~docv:"P"
        ~doc:"QoS priority per model, higher wins (a single value applies \
              to all).")

let process_arg =
  Arg.(
    value
    & opt (enum [ ("uniform", `Uniform); ("poisson", `Poisson);
                  ("bursty", `Bursty) ])
        `Poisson
    & info [ "process" ] ~docv:"P"
        ~doc:"Arrival process: uniform, poisson or bursty.")

let burst_factor_arg =
  Arg.(
    value & opt float 4.0
    & info [ "burst-factor" ] ~docv:"F"
        ~doc:"Bursty process: on-phase rate multiplier (mean rate is \
              preserved).")

let burst_period_arg =
  Arg.(
    value & opt float 100.0
    & info [ "burst-period-ms" ] ~docv:"MS"
        ~doc:"Bursty process: on/off window period.")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"N"
        ~doc:"PRNG seed; the same seed reproduces the run bit-for-bit.")

let closed_arg =
  Arg.(
    value & opt int 0
    & info [ "closed" ] ~docv:"CLIENTS"
        ~doc:"Closed-loop mode with this many concurrent clients per model \
              (0: open loop at --rate).")

let think_arg =
  Arg.(
    value & opt float 0.
    & info [ "think-ms" ] ~docv:"MS"
        ~doc:"Closed-loop mean think time between a completion and the \
              client's next request.")

let bucket_arg =
  Arg.(
    value & opt float 50.
    & info [ "bucket-ms" ] ~docv:"MS" ~doc:"Occupancy-series bucket width.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the full metrics report as JSON ('-': stdout).")

let costing_arg =
  Arg.(
    value
    & opt (enum [ ("exact", `Exact); ("surrogate", `Surrogate) ]) `Exact
    & info [ "costing" ] ~docv:"TIER"
        ~doc:
          "Batch pricing tier: 'exact' prices every distinct (model, batch) \
           through the cycle-level compile+simulate path; 'surrogate' \
           interpolates a per-model piecewise-linear table calibrated on \
           anchor batch sizes (validate with the 'calibrate' command).")

let serve_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Also capture the run's observability trace (request lifecycle \
           spans, queue-depth and shed counters, batch spans, cost-oracle \
           compile+simulate pipe spans) as Chrome trace-event JSON.")

let broadcast ~what n = function
  | [ x ] -> Ok (List.init n (fun _ -> x))
  | l when List.length l = n -> Ok l
  | l ->
    Error
      (Printf.sprintf "%s: expected 1 or %d value(s), got %d" what n
         (List.length l))

let serve models core cores rates duration batch_max delay_ms queue_depth
    slos priorities process burst_factor burst_period_ms seed closed think_ms
    bucket_ms costing json_path trace_path =
  let n = List.length models in
  let ( let* ) = Result.bind in
  exit_of
    (let* rates = broadcast ~what:"--rate" n rates in
     let* slos = broadcast ~what:"--slo-ms" n slos in
     let* priorities = broadcast ~what:"--priority" n priorities in
     let process =
       match process with
       | `Uniform -> Load_gen.Uniform
       | `Poisson -> Load_gen.Poisson
       | `Bursty ->
         Load_gen.Bursty
           { factor = burst_factor; period_s = burst_period_ms /. 1e3 }
     in
     let specs =
       List.mapi
         (fun i ((name, build), (rate, (slo_ms, priority))) ->
           let model_seed = seed + (7919 * i) in
           let workload =
             if closed > 0 then
               Serve.Closed_loop
                 { clients = closed; think_s = think_ms /. 1e3;
                   seed = model_seed }
             else
               Serve.Open_loop
                 (Load_gen.create ~process ~rate_per_s:rate
                    ~duration_s:duration ~seed:model_seed ())
           in
           { Serve.name; build; priority; slo_ms; workload })
         (List.combine models
            (List.combine rates (List.combine slos priorities)))
     in
     let config =
       {
         Serve.core;
         cores;
         max_batch = batch_max;
         max_delay_s = delay_ms /. 1e3;
         queue_depth;
         duration_s = duration;
         bucket_s = bucket_ms /. 1e3;
         costing;
       }
     in
     let collector =
       Option.map
         (fun _ -> Ascend.Obs.Collector.create ~capacity:262144 ())
         trace_path
     in
     let* r =
       match collector with
       | None -> Serve.run config specs
       | Some c ->
         Ascend.Obs.Hook.with_collector c (fun () -> Serve.run config specs)
     in
     Format.printf "%a" Serve.pp r;
     (match json_path with
     | None -> ()
     | Some "-" ->
       print_endline (Ascend.Util.Json.to_string ~pretty:true (Serve.to_json r))
     | Some path -> Ascend.Util.Json.write_file path (Serve.to_json r));
     (match (trace_path, collector) with
     | Some path, Some c ->
       Ascend.Obs.Chrome_trace.write_file path c;
       Format.printf "trace: wrote %s (%d events, %d dropped)@." path
         (Ascend.Obs.Collector.length c)
         (Ascend.Obs.Collector.dropped c)
     | _ -> ());
     Ok ())

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Simulate request-level serving: seeded load generation, dynamic \
          batching, QoS admission control and SLO metrics (p50/p95/p99, \
          goodput, rejection rate, per-core utilization) over the §5.2 \
          multi-core scheduler.")
    Term.(
      const serve $ serve_models_arg $ core_arg $ cores_arg $ rate_arg
      $ duration_arg $ batch_max_arg $ batch_delay_arg $ queue_depth_arg
      $ slo_arg $ priority_arg $ process_arg $ burst_factor_arg
      $ burst_period_arg $ seed_arg $ closed_arg $ think_arg $ bucket_arg
      $ costing_arg $ json_arg $ serve_trace_arg)

(* --- decode ------------------------------------------------------- *)

module Decode_engine = Ascend.Decode.Engine
module Decode_request = Ascend.Decode.Request

let decode_rate_arg =
  Arg.(
    value & opt float 40.
    & info [ "rate" ] ~docv:"R"
        ~doc:"Open-loop arrival rate in requests/s.")

let prompt_mean_arg =
  Arg.(
    value & opt float 16.
    & info [ "prompt-mean" ] ~docv:"TOK"
        ~doc:"Mean prompt length (geometric distribution).")

let prompt_max_arg =
  Arg.(
    value & opt int 48
    & info [ "prompt-max" ] ~docv:"TOK" ~doc:"Prompt length cap.")

let output_mean_arg =
  Arg.(
    value & opt float 8.
    & info [ "output-mean" ] ~docv:"TOK"
        ~doc:"Mean output length (geometric distribution).")

let output_max_arg =
  Arg.(
    value & opt int 32
    & info [ "output-max" ] ~docv:"TOK" ~doc:"Output length cap.")

let fixed_prompt_arg =
  Arg.(
    value & opt int 0
    & info [ "fixed-prompt" ] ~docv:"TOK"
        ~doc:"Use a fixed prompt length instead of the geometric draw \
              (0: geometric).")

let fixed_output_arg =
  Arg.(
    value & opt int 0
    & info [ "fixed-output" ] ~docv:"TOK"
        ~doc:"Use a fixed output length instead of the geometric draw \
              (0: geometric).")

let hbm_mb_arg =
  Arg.(
    value & opt int 1024
    & info [ "hbm-mb" ] ~docv:"MB"
        ~doc:"HBM budget for weights + live KV caches; requests whose cache \
              could never fit are shed.")

let max_cache_len_arg =
  Arg.(
    value & opt int 64
    & info [ "max-cache-len" ] ~docv:"TOK"
        ~doc:"Surrogate grid bound on the cache-length axis (decode steps \
              beyond it fall back to the exact tier).")

let decode_mode_arg =
  Arg.(
    value
    & opt
        (enum
           [ ("continuous", `Continuous); ("static", `Static);
             ("compare", `Compare) ])
        `Continuous
    & info [ "mode" ] ~docv:"MODE"
        ~doc:
          "Batching discipline: 'continuous' (join/leave at token \
           boundaries), 'static' (lockstep groups, padding included) or \
           'compare' (run both on the same trace and report the goodput \
           speedup).")

let small_llm_arg =
  Arg.(
    value & flag
    & info [ "small-llm" ]
        ~doc:"Use the 4-layer small LLM config instead of the tiny one.")

let decode_requests ~rate ~duration ~seed ~process ~prompt_mean ~prompt_max
    ~output_mean ~output_max ~fixed_prompt ~fixed_output =
  let gen =
    Load_gen.create ~process ~rate_per_s:rate ~duration_s:duration ~seed ()
  in
  let prompt =
    if fixed_prompt > 0 then Load_gen.Fixed fixed_prompt
    else Load_gen.Geometric { mean = prompt_mean; max_len = prompt_max }
  in
  let output =
    if fixed_output > 0 then Load_gen.Fixed fixed_output
    else Load_gen.Geometric { mean = output_mean; max_len = output_max }
  in
  Decode_request.of_load_gen ~gen ~prompt ~output

let decode core rate duration seed process burst_factor burst_period_ms
    prompt_mean prompt_max output_mean output_max fixed_prompt fixed_output
    batch_max hbm_mb max_cache_len mode small_llm costing json_path trace_path
    =
  exit_of
    (let process =
       match process with
       | `Uniform -> Load_gen.Uniform
       | `Poisson -> Load_gen.Poisson
       | `Bursty ->
         Load_gen.Bursty
           { factor = burst_factor; period_s = burst_period_ms /. 1e3 }
     in
     let requests =
       decode_requests ~rate ~duration ~seed ~process ~prompt_mean
         ~prompt_max ~output_mean ~output_max ~fixed_prompt ~fixed_output
     in
     let config mode =
       {
         (Decode_engine.default_config ~core ()) with
         Decode_engine.llm =
           (if small_llm then Ascend.Nn.Llm.small_config
            else Ascend.Nn.Llm.tiny_config);
         mode;
         costing;
         max_batch = batch_max;
         hbm_bytes = hbm_mb * Ascend.Util.Units.mib;
         max_cache_len;
       }
     in
     let collector =
       Option.map
         (fun _ -> Ascend.Obs.Collector.create ~capacity:262144 ())
         trace_path
     in
     let with_obs f =
       match collector with
       | None -> f ()
       | Some c -> Ascend.Obs.Hook.with_collector c f
     in
     let ( let* ) = Result.bind in
     let* doc =
       match mode with
       | `Continuous | `Static ->
         let m = if mode = `Static then Decode_engine.Static
                 else Decode_engine.Continuous in
         let* r = with_obs (fun () -> Decode_engine.run (config m) requests) in
         Format.printf "%a" Decode_engine.pp r;
         Ok (Decode_engine.to_json r)
       | `Compare ->
         let* c, s =
           with_obs (fun () ->
               match Decode_engine.run (config Decode_engine.Continuous)
                       requests with
               | Error _ as e -> e
               | Ok c -> (
                 match Decode_engine.run (config Decode_engine.Static)
                         requests with
                 | Error _ as e -> e
                 | Ok s -> Ok (c, s)))
         in
         let speedup = Decode_engine.speedup ~continuous:c ~static:s in
         Format.printf "%a@.%a" Decode_engine.pp c Decode_engine.pp s;
         Format.printf
           "continuous over static: %.2fx goodput (%.1f vs %.1f tok/s)@."
           speedup c.Decode_engine.metrics.Ascend.Decode.Metrics.tokens_per_s
           s.Decode_engine.metrics.Ascend.Decode.Metrics.tokens_per_s;
         Ok
           (Ascend.Util.Json.Obj
              [
                ("continuous", Decode_engine.to_json c);
                ("static", Decode_engine.to_json s);
                ("speedup", Ascend.Util.Json.Float speedup);
              ])
     in
     (match json_path with
     | None -> ()
     | Some "-" ->
       print_endline (Ascend.Util.Json.to_string ~pretty:true doc)
     | Some path -> Ascend.Util.Json.write_file path doc);
     (match (trace_path, collector) with
     | Some path, Some c ->
       Ascend.Obs.Chrome_trace.write_file path c;
       Format.printf "trace: wrote %s (%d events, %d dropped)@." path
         (Ascend.Obs.Collector.length c)
         (Ascend.Obs.Collector.dropped c)
     | _ -> ());
     Ok ())

let decode_cmd =
  Cmd.v
    (Cmd.info "decode"
       ~doc:
         "Simulate LLM decode serving: a seeded open-loop trace of \
          generation requests (geometric or fixed prompt/output lengths) \
          served by the continuous batcher — requests join and leave the \
          running batch at token boundaries, prefill interleaved with \
          in-flight decode steps, KV caches budgeted against HBM — with \
          per-token SLO metrics (TTFT p50/p95/p99, inter-token latency, \
          tokens/s goodput) and a static-batching baseline for comparison.")
    Term.(
      const decode $ core_arg $ decode_rate_arg $ duration_arg $ seed_arg
      $ process_arg $ burst_factor_arg $ burst_period_arg $ prompt_mean_arg
      $ prompt_max_arg $ output_mean_arg $ output_max_arg $ fixed_prompt_arg
      $ fixed_output_arg $ batch_max_arg $ hbm_mb_arg $ max_cache_len_arg
      $ decode_mode_arg $ small_llm_arg $ costing_arg $ json_arg
      $ serve_trace_arg)

(* --- fleet -------------------------------------------------------- *)

module Fleet = Ascend.Fleet.Fleet
module Router = Ascend.Fleet.Router

let fleet_models_arg =
  Arg.(
    required
    & pos 0 (some (list named_model_conv)) None
    & info [] ~docv:"MODEL[,MODEL...]"
        ~doc:"Comma-separated list of models the fleet serves.")

let nodes_arg =
  Arg.(
    value & opt int 4
    & info [ "nodes" ] ~docv:"N" ~doc:"Number of server nodes in the fleet.")

let cores_per_node_arg =
  Arg.(
    value & opt int 8
    & info [ "cores-per-node" ] ~docv:"N"
        ~doc:"Cores per server node (default: the 910 server's 8 chips).")

let policy_arg =
  Arg.(
    value
    & opt (enum Router.policies) Router.Least_loaded
    & info [ "policy" ] ~docv:"P"
        ~doc:"Routing policy: round-robin, least-loaded or affinity.")

let replicas_arg =
  Arg.(
    value
    & opt (list int) [ 0 ]
    & info [ "replicas" ] ~docv:"R"
        ~doc:
          "Resident replicas per model for the placement plan (a single \
           value applies to all): 0 replicates on every node (hot), 1 pins \
           to the home node (cold, pays a page-in when routed elsewhere).")

let pagein_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "pagein-json" ] ~docv:"FILE"
        ~doc:
          "Write the page-in differential document ('-': stdout): on \
           $(b,fleet) the per-node page-in counts the run observed, on \
           $(b,lint --placement) the counts the static verifier predicts \
           for the plan — the two sides of the CI gate serialise through \
           one shape, so agreement is a byte comparison.")

let node_hbm_gb_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "node-hbm-gb" ] ~docv:"G"
        ~doc:
          "Per-node HBM capacity: every node must hold its resident \
           models' weights plus their reserved KV-cache working sets \
           (decode-class models); unservable models and overcommitted \
           plans fail fast.")

let train_nodes_arg =
  Arg.(
    value & opt int 0
    & info [ "train-nodes" ] ~docv:"K"
        ~doc:
          "Colocate a data-parallel training job on the first K nodes; its \
           gradient all-reduce competes with inference page-ins for \
           interconnect bandwidth (0: no training).")

let train_model_arg =
  Arg.(
    value
    & opt (some named_model_conv) None
    & info [ "train-model" ] ~docv:"MODEL"
        ~doc:"Model the colocated trainer runs (default: the first served \
              model).")

let train_batch_arg =
  Arg.(
    value & opt int 8
    & info [ "train-batch" ] ~docv:"N"
        ~doc:"Per-node batch of the colocated training job.")

let fleet models core nodes cores_per_node policy replicas rates duration
    batch_max delay_ms queue_depth slos priorities process burst_factor
    burst_period_ms seed closed think_ms bucket_ms train_nodes train_model
    train_batch node_hbm_gb costing json_path pagein_path trace_path =
  let n = List.length models in
  let ( let* ) = Result.bind in
  exit_of
    (let* rates = broadcast ~what:"--rate" n rates in
     let* slos = broadcast ~what:"--slo-ms" n slos in
     let* priorities = broadcast ~what:"--priority" n priorities in
     let* replicas = broadcast ~what:"--replicas" n replicas in
     let process =
       match process with
       | `Uniform -> Load_gen.Uniform
       | `Poisson -> Load_gen.Poisson
       | `Bursty ->
         Load_gen.Bursty
           { factor = burst_factor; period_s = burst_period_ms /. 1e3 }
     in
     let specs =
       List.mapi
         (fun i ((name, build), (rate, (slo_ms, (priority, replicas)))) ->
           let model_seed = seed + (7919 * i) in
           let workload =
             if closed > 0 then
               Serve.Closed_loop
                 { clients = closed; think_s = think_ms /. 1e3;
                   seed = model_seed }
             else
               Serve.Open_loop
                 (Load_gen.create ~process ~rate_per_s:rate
                    ~duration_s:duration ~seed:model_seed ())
           in
           (* decode-class models reserve KV-cache working set on every
              resident node: enough for a full batch of max-position
              sequences; stateless classes reserve nothing *)
           let kv_bytes =
             if String.starts_with ~prefix:"llm" name then
               batch_max
               * Ascend.Nn.Llm.kv_cache_bytes Ascend.Nn.Llm.tiny_config
                   ~tokens:Ascend.Nn.Llm.tiny_config.Ascend.Nn.Llm.max_position
             else 0
           in
           { Fleet.name; build; priority; slo_ms; workload; replicas;
             kv_bytes })
         (List.combine models
            (List.combine rates
               (List.combine slos (List.combine priorities replicas))))
     in
     let config =
       {
         (Fleet.default_config ~core ~nodes) with
         Fleet.cores_per_node;
         max_batch = batch_max;
         max_delay_s = delay_ms /. 1e3;
         queue_depth;
         duration_s = duration;
         bucket_s = bucket_ms /. 1e3;
         policy;
         costing;
         hbm_bytes_per_node =
           Option.map (fun gb -> int_of_float (gb *. 1e9)) node_hbm_gb;
       }
     in
     let train =
       if train_nodes <= 0 then None
       else
         let tj_model, tj_build =
           match train_model with
           | Some (name, build) -> (name, build)
           | None -> List.hd models
         in
         Some
           { Fleet.tj_model; tj_build; tj_batch = train_batch;
             tj_nodes = train_nodes }
     in
     let collector =
       Option.map
         (fun _ -> Ascend.Obs.Collector.create ~capacity:262144 ())
         trace_path
     in
     let* r =
       (* Placement.build raises on unservable models (weights + reserved
          KV cache over a node's HBM); surface that as a clean CLI error *)
       try
         match collector with
         | None -> Fleet.run ?train config specs
         | Some c ->
           Ascend.Obs.Hook.with_collector c (fun () ->
               Fleet.run ?train config specs)
       with Invalid_argument msg -> Error msg
     in
     Format.printf "%a" Fleet.pp r;
     (match json_path with
     | None -> ()
     | Some "-" ->
       print_endline (Ascend.Util.Json.to_string ~pretty:true (Fleet.to_json r))
     | Some path -> Ascend.Util.Json.write_file path (Fleet.to_json r));
     (match pagein_path with
     | None -> ()
     | Some path ->
       let doc =
         Fleet.pagein_json ~policy ~placement:r.Fleet.placement
           ~counts:(Fleet.observed_page_ins r)
       in
       if path = "-" then
         print_endline (Ascend.Util.Json.to_string ~pretty:true doc)
       else Ascend.Util.Json.write_file path doc);
     (match (trace_path, collector) with
     | Some path, Some c ->
       Ascend.Obs.Chrome_trace.write_file path c;
       Format.printf "trace: wrote %s (%d events, %d dropped)@." path
         (Ascend.Obs.Collector.length c)
         (Ascend.Obs.Collector.dropped c)
     | _ -> ());
     Ok ())

let fleet_cmd =
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Simulate a multi-node inference fleet: a router places requests \
          across N server nodes by policy against a replication/placement \
          plan (cold models pay an HBM page-in over the server \
          interconnect), optionally colocated with training jobs competing \
          for that bandwidth; reports per-node utilization, cross-node \
          tail latency and the breakdown by routing decision.")
    Term.(
      const fleet $ fleet_models_arg $ core_arg $ nodes_arg
      $ cores_per_node_arg $ policy_arg $ replicas_arg $ rate_arg
      $ duration_arg $ batch_max_arg $ batch_delay_arg $ queue_depth_arg
      $ slo_arg $ priority_arg $ process_arg $ burst_factor_arg
      $ burst_period_arg $ seed_arg $ closed_arg $ think_arg $ bucket_arg
      $ train_nodes_arg $ train_model_arg $ train_batch_arg $ node_hbm_gb_arg
      $ costing_arg
      $ json_arg $ pagein_json_arg $ serve_trace_arg)

(* --- lint / sanitize ---------------------------------------------- *)

module Codegen = Ascend.Compiler.Codegen
module Fusion = Ascend.Compiler.Fusion
module Soc_schedule = Ascend.Compiler.Soc_schedule
module Verify = Ascend.Verify
module Finding = Ascend.Verify.Finding
module Sanitizer = Ascend.Core_sim.Sanitizer

(* every codegen option combination: sync mode x double-buffering x
   weight sparsity — the axes of paper Figure 3's ablations *)
let lint_option_combos =
  List.concat_map
    (fun sync_mode ->
      List.concat_map
        (fun double_buffer ->
          List.map
            (fun weight_sparsity ->
              { Codegen.default_options with
                sync_mode; double_buffer; weight_sparsity })
            [ None; Some 0.5 ])
        [ true; false ])
    [ Codegen.Flags; Codegen.Coarse_barriers ]

let describe_options (o : Codegen.options) =
  Printf.sprintf "%s,db=%b,sparsity=%s"
    (match o.Codegen.sync_mode with
    | Codegen.Flags -> "flags"
    | Codegen.Coarse_barriers -> "barriers")
    o.Codegen.double_buffer
    (match o.Codegen.weight_sparsity with
    | None -> "none"
    | Some r -> Printf.sprintf "%.2f" r)

(* each combo renders its findings into its own buffer so combos can be
   verified on worker domains and the reports printed in submission
   order — `--jobs N` output is byte-identical to `--jobs 1` *)
type combo_report = {
  model : string;
  core : string;
  options : Codegen.options option;
      (* None for the per-(model, core) soc/sanitize sweeps, which run
         default codegen options only *)
  text : string;
  findings : Finding.t list;
}

let severity_counts findings =
  List.fold_left
    (fun (e, w) (f : Finding.t) ->
      match f.Finding.severity with
      | Finding.Error -> (e + 1, w)
      | Finding.Warning -> (e, w + 1))
    (0, 0) findings

let lint_one ~verbose config options name graph =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let findings = ref [] in
  let n_programs = ref 0 in
  (try
     List.iter
       (fun ((grp : Fusion.t), p) ->
         incr n_programs;
         match Verify.analyze config p with
         | [] -> ()
         | fs ->
           findings := !findings @ fs;
           Format.fprintf ppf "%s / %s / %s / %s:@." name config.Config.name
             (describe_options options) grp.Fusion.tag;
           Format.fprintf ppf "%a" Verify.pp_report fs)
       (Codegen.graph_programs ~options config graph)
   with Invalid_argument e ->
     findings :=
       !findings @ [ Finding.make Finding.Malformed ("codegen rejected: " ^ e) ];
     Format.fprintf ppf "%s / %s / %s: codegen rejected: %s@." name
       config.Config.name (describe_options options) e);
  if verbose && !findings = [] then
    Format.fprintf ppf "%s / %s / %s: %d program(s) clean@." name
      config.Config.name (describe_options options) !n_programs;
  Format.pp_print_flush ppf ();
  { model = name; core = config.Config.name; options = Some options;
    text = Buffer.contents buf; findings = !findings }

(* --soc: one combo per (model, core) at default codegen options — the
   per-program lint plus the whole-SoC schedule analysis (cross-core
   races, dependency cycles, optional LLC/HBM capacity) over the same
   compiled artifacts *)
let lint_soc_one ~verbose ?llc_bytes ?hbm_bytes ~cores:soc_cores config name
    graph =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let findings = ref [] in
  let n_programs = ref 0 in
  (try
     let plan, programs =
       Soc_schedule.build ~cores:soc_cores ?llc_bytes ?hbm_bytes config graph
     in
     List.iter
       (fun ((grp : Fusion.t), p) ->
         incr n_programs;
         match Verify.analyze config p with
         | [] -> ()
         | fs ->
           findings := !findings @ fs;
           Format.fprintf ppf "%s / %s / %s:@." name config.Config.name
             grp.Fusion.tag;
           Format.fprintf ppf "%a" Verify.pp_report fs)
       programs;
     match Verify.Soc.analyze plan with
     | [] -> ()
     | fs ->
       findings := !findings @ fs;
       Format.fprintf ppf "%s / %s / soc schedule (%d cores):@." name
         config.Config.name soc_cores;
       Format.fprintf ppf "%a" Verify.pp_report fs
   with Invalid_argument e ->
     findings :=
       !findings @ [ Finding.make Finding.Malformed ("codegen rejected: " ^ e) ];
     Format.fprintf ppf "%s / %s: codegen rejected: %s@." name
       config.Config.name e);
  if verbose && !findings = [] then
    Format.fprintf ppf "%s / %s: %d program(s) + soc schedule clean@." name
      config.Config.name !n_programs;
  Format.pp_print_flush ppf ();
  { model = name; core = config.Config.name; options = None;
    text = Buffer.contents buf; findings = !findings }

(* the dynamic half of the differential gate: replay every generated
   program (default codegen options, same combo iteration as
   `lint --soc`) through the shadow-state sanitizer *)
let sanitize_one ~verbose config name graph =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let findings = ref [] in
  let n_programs = ref 0 in
  let n_instrs = ref 0 in
  (try
     List.iter
       (fun ((grp : Fusion.t), p) ->
         incr n_programs;
         let r = Sanitizer.run config p in
         n_instrs := !n_instrs + r.Sanitizer.instructions_executed;
         match r.Sanitizer.findings with
         | [] -> ()
         | fs ->
           findings := !findings @ fs;
           Format.fprintf ppf "%s / %s / %s:@." name config.Config.name
             grp.Fusion.tag;
           Format.fprintf ppf "%a" Verify.pp_report fs)
       (Codegen.graph_programs config graph)
   with Invalid_argument e ->
     findings :=
       !findings @ [ Finding.make Finding.Malformed ("codegen rejected: " ^ e) ];
     Format.fprintf ppf "%s / %s: codegen rejected: %s@." name
       config.Config.name e);
  if verbose && !findings = [] then
    Format.fprintf ppf
      "%s / %s: %d program(s) clean (%d instruction(s) replayed)@." name
      config.Config.name !n_programs !n_instrs;
  Format.pp_print_flush ppf ();
  { model = name; core = config.Config.name; options = None;
    text = Buffer.contents buf; findings = !findings }

(* the differential-gate document: `lint --soc --json` and
   `sanitize --json` emit the same combo iteration and field order, so
   two sweeps that agree are byte-identical and CI can `cmp` them *)
let sweep_json results =
  let module J = Ascend.Util.Json in
  let combo r =
    J.Obj
      ([ ("model", J.String r.model); ("core", J.String r.core) ]
      @ (match r.options with
        | None -> []
        | Some o -> [ ("options", J.String (describe_options o)) ])
      @ [
          ("verdict", J.String (if r.findings = [] then "clean" else "dirty"));
          ("findings",
           J.List
             (List.map Finding.to_json (List.sort Finding.compare r.findings)));
        ])
  in
  J.Obj
    [
      ("combos", J.List (List.map combo results));
      ("combinations", J.Int (List.length results));
      ("dirty",
       J.Int (List.length (List.filter (fun r -> r.findings <> []) results)));
    ]

let write_sweep_json path results =
  match path with
  | None -> ()
  | Some "-" ->
    print_endline (Ascend.Util.Json.to_string ~pretty:true (sweep_json results))
  | Some p -> Ascend.Util.Json.write_file p (sweep_json results)

let select_models model_opt all =
  match (model_opt, all) with
  | Some (name, build), _ -> [ (name, build) ]
  | None, true -> models
  | None, false ->
    prerr_endline "error: pass a MODEL or --all";
    exit 2

let select_cores core_opt =
  match core_opt with Some c -> [ c ] | None -> List.map snd cores

(* the per-(model, core) combo list shared by `lint --soc` and
   `sanitize`: same model order, same dtype gating — agreement here is
   what makes the two JSON sweeps comparable *)
let model_core_combos selected_models selected_cores =
  List.concat_map
    (fun (name, build) ->
      let graph = build ~batch:1 in
      List.filter_map
        (fun config ->
          if Config.supports config (Graph.dtype graph) then
            Some (name, graph, config)
          else None)
        selected_cores)
    selected_models

(* combos fan out over the execution service's worker pool; results
   come back in submission order, so reports and JSON stay
   byte-identical across --jobs *)
let run_combos ~jobs f combo_list =
  let service =
    Ascend.Exec.Service.create
      ?jobs:(if jobs <= 0 then None else Some jobs)
      ()
  in
  let results = Ascend.Exec.Service.map service f combo_list in
  Ascend.Exec.Service.shutdown service;
  results

let finish ~what ~strict ~json_path results =
  List.iter (fun r -> print_string r.text) results;
  write_sweep_json json_path results;
  let all = List.concat_map (fun r -> r.findings) results in
  let errors, warnings = severity_counts all in
  let combos = List.length results in
  if combos = 0 then begin
    prerr_endline
      (Printf.sprintf
         "error: nothing to %s (selected core does not support the model's \
          dtype)"
         what);
    2
  end
  else if all = [] then begin
    Format.printf "%s: %d combination(s) clean@." what combos;
    0
  end
  else begin
    Format.printf
      "%s: %d finding(s) (%d error(s), %d warning(s)) across %d \
       combination(s)@."
      what (List.length all) errors warnings combos;
    if errors > 0 || strict then 1 else 0
  end

(* --- lint --cluster / --placement ---------------------------------- *)

module Vcluster = Ascend.Verify.Cluster
module Collective = Ascend.Cluster.Collective
module Coll_sched = Ascend.Cluster.Collective_schedule
module Cserver = Ascend.Cluster.Server
module Fat_tree = Ascend.Noc.Fat_tree
module Placement = Ascend.Fleet.Placement

(* one cluster combination: a closed-form time and the thunk expanding
   the same (algorithm, topology, bytes) point into an explicit
   schedule — [lint_cluster_one] analyzes the schedule and holds the
   two times within 1e-6 relative (the differential gate) *)
type cluster_combo = {
  cc_algorithm : string;
  cc_peers : int;
  cc_bytes : float;
  cc_closed : float;
  cc_build : unit -> Vcluster.schedule;
}

type cluster_report = {
  cl_name : string;  (** the schedule's own name, e.g. "ring(n=4)" *)
  cl_algorithm : string;
  cl_peers : int;
  cl_bytes : float;
  cl_closed : float;
  cl_derived : float;
  cl_rel_err : float;
  cl_gate_ok : bool;
  cl_text : string;
  cl_findings : Finding.t list;
}

let cluster_gate_rel = 1e-6

(* the sweep: every collective builder at several node counts
   (power-of-two and not) and message sizes, over the real topologies —
   flat algorithms on the fat-tree NIC rate, the intra-server hierarchy
   on the 910 board, and the full hierarchical cluster collective *)
let cluster_combos =
  let nic = Fat_tree.server_bandwidth Fat_tree.ascend_cluster in
  let server = Cserver.ascend910_server in
  let bytes_axis = [ 1e6; 1e8 ] in
  let flat =
    List.concat_map
      (fun nodes ->
        List.concat_map
          (fun bytes ->
            [
              { cc_algorithm = "ring"; cc_peers = nodes; cc_bytes = bytes;
                cc_closed =
                  Collective.ring_allreduce_seconds ~bytes ~nodes
                    ~bandwidth:nic ();
                cc_build =
                  (fun () ->
                    Coll_sched.ring ~bytes ~nodes ~bandwidth:nic ()) };
              { cc_algorithm = "halving-doubling"; cc_peers = nodes;
                cc_bytes = bytes;
                cc_closed =
                  Collective.halving_doubling_seconds ~bytes ~nodes
                    ~bandwidth:nic ();
                cc_build =
                  (fun () ->
                    Coll_sched.halving_doubling ~bytes ~nodes ~bandwidth:nic
                      ()) };
            ])
          bytes_axis)
      [ 2; 3; 4; 5; 8; 16; 17 ]
  in
  let intra =
    List.map
      (fun bytes ->
        { cc_algorithm = "intra-server"; cc_peers = server.Cserver.chips;
          cc_bytes = bytes;
          cc_closed = Cserver.intra_server_allreduce_seconds server ~bytes;
          cc_build = (fun () -> Coll_sched.intra_server ~server ~bytes) })
      bytes_axis
  in
  let hier =
    List.concat_map
      (fun servers ->
        let network = Fat_tree.create ~servers () in
        List.map
          (fun bytes ->
            { cc_algorithm = "hierarchical"; cc_peers = servers;
              cc_bytes = bytes;
              cc_closed =
                Collective.hierarchical_allreduce_seconds ~server ~network
                  ~servers ~bytes;
              cc_build =
                (fun () ->
                  Coll_sched.hierarchical ~server ~network ~servers ~bytes) })
          bytes_axis)
      [ 1; 2; 3; 4; 8; 16 ]
  in
  flat @ intra @ hier

let lint_cluster_one ~verbose combo =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let sched = combo.cc_build () in
  let findings = Vcluster.analyze sched in
  let derived = Vcluster.schedule_seconds sched in
  let closed = combo.cc_closed in
  let rel_err =
    Float.abs (derived -. closed) /. Float.max (Float.abs closed) 1e-300
  in
  let gate_ok = rel_err <= cluster_gate_rel in
  let label =
    Printf.sprintf "%s / %.1e B" sched.Vcluster.sched_name combo.cc_bytes
  in
  if findings <> [] then begin
    Format.fprintf ppf "%s:@." label;
    Format.fprintf ppf "%a" Verify.pp_report findings
  end;
  if not gate_ok then
    Format.fprintf ppf
      "%s: differential gate FAILED: closed-form %.9e s vs schedule-derived \
       %.9e s (rel err %.3e > %.0e)@."
      label closed derived rel_err cluster_gate_rel;
  if verbose && findings = [] && gate_ok then
    Format.fprintf ppf "%s: clean (closed %.9e s, schedule %.9e s)@." label
      closed derived;
  Format.pp_print_flush ppf ();
  { cl_name = sched.Vcluster.sched_name; cl_algorithm = combo.cc_algorithm;
    cl_peers = combo.cc_peers; cl_bytes = combo.cc_bytes; cl_closed = closed;
    cl_derived = derived; cl_rel_err = rel_err; cl_gate_ok = gate_ok;
    cl_text = Buffer.contents buf; cl_findings = findings }

let cluster_sweep_json results =
  let module J = Ascend.Util.Json in
  let combo r =
    J.Obj
      [
        ("schedule", J.String r.cl_name);
        ("algorithm", J.String r.cl_algorithm);
        ("peers", J.Int r.cl_peers);
        ("bytes", J.Float r.cl_bytes);
        ("closed_form_s", J.Float r.cl_closed);
        ("schedule_s", J.Float r.cl_derived);
        ("rel_err", J.String (Printf.sprintf "%.3e" r.cl_rel_err));
        ("gate", J.String (if r.cl_gate_ok then "ok" else "failed"));
        ("verdict",
         J.String (if r.cl_findings = [] then "clean" else "dirty"));
        ("findings",
         J.List
           (List.map Finding.to_json (List.sort Finding.compare r.cl_findings)));
      ]
  in
  J.Obj
    [
      ("combos", J.List (List.map combo results));
      ("combinations", J.Int (List.length results));
      ("dirty",
       J.Int
         (List.length (List.filter (fun r -> r.cl_findings <> []) results)));
      ("gate_failures",
       J.Int (List.length (List.filter (fun r -> not r.cl_gate_ok) results)));
    ]

(* the closed-vs-schedule differential document: `--times closed` and
   `--times schedule` print the same combos, labels and field order
   with the selected side's seconds rounded to %.3e — when the gate
   holds the two files are byte-identical, so CI can `cmp` them *)
let cluster_times_json which results =
  let module J = Ascend.Util.Json in
  let row r =
    J.Obj
      [
        ("schedule", J.String r.cl_name);
        ("bytes", J.String (Printf.sprintf "%.1e" r.cl_bytes));
        ("seconds",
         J.String
           (Printf.sprintf "%.3e"
              (match which with
              | `Closed -> r.cl_closed
              | `Schedule -> r.cl_derived)));
      ]
  in
  J.Obj
    [
      ("times", J.List (List.map row results));
      ("combinations", J.Int (List.length results));
    ]

let lint_cluster ~verbose ~strict ~json_path ~times ~jobs =
  let results = run_combos ~jobs (lint_cluster_one ~verbose) cluster_combos in
  List.iter (fun r -> print_string r.cl_text) results;
  (let doc =
     match times with
     | Some which -> Some (cluster_times_json which results)
     | None when json_path <> None -> Some (cluster_sweep_json results)
     | None -> None
   in
   match (doc, json_path) with
   | None, _ -> ()
   | Some doc, (None | Some "-") ->
     print_endline (Ascend.Util.Json.to_string ~pretty:true doc)
   | Some doc, Some path -> Ascend.Util.Json.write_file path doc);
  let all = List.concat_map (fun r -> r.cl_findings) results in
  let errors, warnings = severity_counts all in
  let gate_failures =
    List.length (List.filter (fun r -> not r.cl_gate_ok) results)
  in
  let combos = List.length results in
  if all = [] && gate_failures = 0 then begin
    Format.printf
      "lint --cluster: %d combination(s) clean, closed-form and \
       schedule-derived times within %.0e relative@."
      combos cluster_gate_rel;
    0
  end
  else begin
    Format.printf
      "lint --cluster: %d finding(s) (%d error(s), %d warning(s)), %d gate \
       failure(s) across %d combination(s)@."
      (List.length all) errors warnings gate_failures combos;
    if errors > 0 || gate_failures > 0 || strict then 1 else 0
  end

(* --placement: lint a fleet placement plan statically — per-node HBM
   overcommit against the policy-reachable resident set, plus the
   predicted page-in counts the CI gate compares against `fleet
   --pagein-json` *)
let lint_placement_mode models ~nodes ~policy ~replicas ~hbm_gb ~pagein_path
    ~strict ~json_path =
  let n = List.length models in
  match broadcast ~what:"--replicas" n replicas with
  | Error e ->
    prerr_endline ("error: " ^ e);
    2
  | Ok replicas -> (
    let hbm_bytes_per_node =
      Option.map (fun gb -> int_of_float (gb *. 1e9)) hbm_gb
    in
    let policy_name = Router.policy_name policy in
    try
      (* capacity goes to the verifier, not to [build]: the lint mode
         reports HBM overflow as a finding instead of raising *)
      let placement =
        Placement.build ~nodes
          (List.map2
             (fun (name, build) r ->
               (name, Fleet.model_weight_bytes build, 0, r))
             models replicas)
      in
      let plan =
        Placement.verify_plan ?hbm_bytes_per_node ~policy:policy_name
          placement
      in
      let findings = Vcluster.lint_placement plan in
      let predicted = Vcluster.predicted_page_ins plan in
      let pagein_doc =
        Fleet.pagein_json ~policy ~placement ~counts:predicted
      in
      (match pagein_path with
      | None -> ()
      | Some "-" ->
        print_endline (Ascend.Util.Json.to_string ~pretty:true pagein_doc)
      | Some path -> Ascend.Util.Json.write_file path pagein_doc);
      (match json_path with
      | None -> ()
      | Some path ->
        let module J = Ascend.Util.Json in
        let doc =
          J.Obj
            [
              ("plan", J.String plan.Vcluster.plan_name);
              ("policy", J.String policy_name);
              ("nodes", J.Int nodes);
              ("placement", Placement.to_json placement);
              ("predicted_page_ins",
               J.List
                 (Array.to_list (Array.map (fun c -> J.Int c) predicted)));
              ("verdict",
               J.String (if findings = [] then "clean" else "dirty"));
              ("findings",
               J.List
                 (List.map Finding.to_json (List.sort Finding.compare findings)));
            ]
        in
        if path = "-" then print_endline (J.to_string ~pretty:true doc)
        else J.write_file path doc);
      if findings <> [] then begin
        Format.printf "%s (%s):@." plan.Vcluster.plan_name policy_name;
        Format.printf "%a" Verify.pp_report findings
      end;
      let errors, warnings = severity_counts findings in
      Format.printf
        "lint --placement: %s, %s routing: predicted page-ins per node [%s] \
         (total %d)@."
        plan.Vcluster.plan_name policy_name
        (String.concat "; "
           (Array.to_list (Array.map string_of_int predicted)))
        (Array.fold_left ( + ) 0 predicted);
      if findings = [] then begin
        Format.printf "lint --placement: plan clean@.";
        0
      end
      else begin
        Format.printf "lint --placement: %d finding(s) (%d error(s), %d \
                       warning(s))@."
          (List.length findings) errors warnings;
        if errors > 0 || strict then 1 else 0
      end
    with Invalid_argument e ->
      prerr_endline ("error: " ^ e);
      1)

let lint model_opt all core_opt soc soc_cores llc_mb hbm_mb cluster times
    placement_models nodes policy replicas hbm_gb pagein_path verbose strict
    json_path jobs =
  match placement_models with
  | Some models ->
    lint_placement_mode models ~nodes ~policy ~replicas ~hbm_gb ~pagein_path
      ~strict ~json_path
  | None when cluster -> lint_cluster ~verbose ~strict ~json_path ~times ~jobs
  | None when times <> None ->
    prerr_endline "error: --times requires --cluster";
    2
  | None ->
  let selected_models = select_models model_opt all in
  let selected_cores = select_cores core_opt in
  let results =
    if soc then
      let llc_bytes = Option.map (fun mb -> mb * 1024 * 1024) llc_mb in
      let hbm_bytes = Option.map (fun mb -> mb * 1024 * 1024) hbm_mb in
      run_combos ~jobs
        (fun (name, graph, config) ->
          lint_soc_one ~verbose ?llc_bytes ?hbm_bytes ~cores:soc_cores config
            name graph)
        (model_core_combos selected_models selected_cores)
    else
      run_combos ~jobs
        (fun (name, graph, config, options) ->
          lint_one ~verbose config options name graph)
        (List.concat_map
           (fun (name, graph, config) ->
             List.map
               (fun options -> (name, graph, config, options))
               lint_option_combos)
           (model_core_combos selected_models selected_cores))
  in
  finish ~what:"lint" ~strict ~json_path results

let sanitize model_opt all core_opt verbose strict json_path jobs =
  let results =
    run_combos ~jobs
      (fun (name, graph, config) -> sanitize_one ~verbose config name graph)
      (model_core_combos (select_models model_opt all) (select_cores core_opt))
  in
  finish ~what:"sanitize" ~strict ~json_path results

let lint_model_arg =
  Arg.(value & pos 0 (some named_model_conv) None & info [] ~docv:"MODEL")

let lint_all_arg =
  Arg.(value & flag
       & info [ "all" ] ~doc:"Lint every model in the zoo (default cores: all).")

let lint_core_arg =
  Arg.(value & opt (some core_conv) None
       & info [ "core" ] ~docv:"CORE"
           ~doc:"Restrict to one core version (default: all Table-5 cores).")

let lint_soc_arg =
  Arg.(value & flag
       & info [ "soc" ]
           ~doc:"Lift the analysis to the whole-SoC fused-group schedule: one \
                 combination per model/core at default codegen options, \
                 checking cross-core races and dependency cycles (plus \
                 LLC/HBM overcommit with --llc-mb/--hbm-mb) on top of the \
                 per-program lint.")

let lint_soc_cores_arg =
  Arg.(value & opt int Soc_schedule.default_cores
       & info [ "cores" ] ~docv:"N"
           ~doc:"SoC core count for the --soc schedule.")

let lint_llc_arg =
  Arg.(value & opt (some int) None
       & info [ "llc-mb" ] ~docv:"MB"
           ~doc:"Enable the --soc LLC concurrent-working-set check with this \
                 capacity (MiB).")

let lint_hbm_arg =
  Arg.(value & opt (some int) None
       & info [ "hbm-mb" ] ~docv:"MB"
           ~doc:"Enable the --soc HBM residency check with this capacity \
                 (MiB).")

let lint_cluster_arg =
  Arg.(value & flag
       & info [ "cluster" ]
           ~doc:"Lift the analysis to cluster-level collective schedules: \
                 expand ring, halving/doubling, intra-server and \
                 hierarchical all-reduce into explicit per-chip step \
                 schedules over the real HCCS/PCI-E/NIC links at several \
                 node counts and message sizes, check matching, deadlock \
                 freedom, link-capacity overcommit and reduction \
                 completeness, and hold the schedule-derived time within \
                 1e-6 relative of the closed-form cost model (the \
                 differential gate).")

let lint_times_arg =
  Arg.(value
       & opt (some (enum [ ("closed", `Closed); ("schedule", `Schedule) ]))
           None
       & info [ "times" ] ~docv:"SIDE"
           ~doc:"With --cluster: emit the per-combo times of one side of \
                 the differential gate ($(docv) is 'closed' or 'schedule') \
                 as the --json document, seconds rounded to three \
                 significant digits — the two sides compare byte-equal \
                 when the gate holds, so CI can cmp them.")

let lint_placement_arg =
  Arg.(value
       & opt (some (list named_model_conv)) None
       & info [ "placement" ] ~docv:"MODEL[,MODEL...]"
           ~doc:"Lint a fleet placement plan instead of generated programs: \
                 build the plan for these models (weights from the fused \
                 graphs, replica counts from --replicas, node count from \
                 --nodes), check per-node HBM overcommit of the \
                 policy-reachable resident set against --hbm-gb, and \
                 predict per-node page-in counts (--pagein-json) for the \
                 --policy routing.")

let lint_hbm_gb_arg =
  Arg.(value & opt (some float) None
       & info [ "hbm-gb" ] ~docv:"GB"
           ~doc:"Per-node HBM capacity for the --placement overcommit \
                 check (GB; omit to skip the capacity check).")

let lint_verbose_arg =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Report clean combinations too.")

let strict_arg =
  Arg.(value & flag
       & info [ "strict" ]
           ~doc:"Exit non-zero on warnings too, not just errors.")

let findings_json_arg =
  Arg.(value & opt (some string) None
       & info [ "json" ] ~docv:"FILE"
           ~doc:"Write the findings as deterministic JSON ('-': stdout); \
                 lint --soc and sanitize emit the same document shape, so \
                 sweeps that agree compare byte-equal.")

let lint_jobs_arg =
  Arg.(value & opt int 0
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Verify combinations on $(docv) worker domains of the \
                 execution service (0 = one per recommended domain). Output \
                 is byte-identical regardless of $(docv).")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify generated programs (happens-before deadlock \
          analysis, RAW/WAR/WAW buffer hazards, buffer-peak cross-checks, \
          flag leaks) across codegen option combinations; --soc lifts the \
          analysis to the whole-SoC fused-group schedule (cross-core races, \
          schedule deadlock cycles, LLC/HBM capacity overcommit); --cluster \
          to collective schedules over the server/fat-tree links \
          (unmatched transfers, deadlock, link overcommit, reduction \
          completeness, plus the closed-form differential gate); \
          --placement lints a fleet placement plan (HBM overcommit, \
          predicted page-ins). Exits non-zero on errors (--strict: on any \
          finding).")
    Term.(const lint $ lint_model_arg $ lint_all_arg $ lint_core_arg
          $ lint_soc_arg $ lint_soc_cores_arg $ lint_llc_arg $ lint_hbm_arg
          $ lint_cluster_arg $ lint_times_arg $ lint_placement_arg
          $ nodes_arg $ policy_arg $ replicas_arg $ lint_hbm_gb_arg
          $ pagein_json_arg $ lint_verbose_arg $ strict_arg
          $ findings_json_arg $ lint_jobs_arg)

let sanitize_all_arg =
  Arg.(value & flag
       & info [ "all" ]
           ~doc:"Sanitize every model in the zoo (default cores: all).")

let sanitize_cmd =
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:
         "Replay each generated program through the dynamic shadow-state \
          sanitizer: uninitialized reads, footprint overflows, \
          unsynchronised cross-pipe accesses, runtime buffer capacity, flag \
          leaks and replay deadlocks, tracked per (buffer, slot) with \
          vector clocks — the dynamic half of the differential \
          lint-vs-sanitize gate. Exits non-zero on errors (--strict: on any \
          finding).")
    Term.(const sanitize $ lint_model_arg $ sanitize_all_arg $ lint_core_arg
          $ lint_verbose_arg $ strict_arg $ findings_json_arg $ lint_jobs_arg)

(* --- trace -------------------------------------------------------- *)

module Exec_trace = Ascend.Exec.Trace
module Obs = Ascend.Obs

let trace_model_pos =
  Arg.(value & pos 0 (some named_model_conv) None & info [] ~docv:"MODEL")

let trace_model_opt =
  Arg.(
    value
    & opt (some named_model_conv) None
    & info [ "model" ] ~docv:"MODEL"
        ~doc:"Model to trace (alternative to the positional argument).")

let trace_output_arg =
  Arg.(
    value & opt string "trace.json"
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Chrome trace-event JSON output path.")

let trace model_pos model_opt core batch output =
  let chosen =
    match (model_pos, model_opt) with
    | Some m, None | None, Some m -> Ok m
    | Some _, Some _ ->
      Error "pass MODEL either positionally or via --model, not both"
    | None, None -> Error "pass a MODEL (positionally or via --model)"
  in
  match chosen with
  | Error e ->
    prerr_endline ("error: " ^ e);
    2
  | Ok (name, build) ->
    exit_of
      (match Exec_trace.model core (build ~batch) with
      | Error _ as e -> e
      | Ok c ->
        Ascend.Util.Json.write_file output c.Exec_trace.json;
        print_string (Obs.Summary.render c.Exec_trace.summary);
        Format.printf "%s on %s (batch %d): %d simulated cycles@." name
          core.Config.name batch c.Exec_trace.total_cycles;
        (* the capture itself is deliberately serial (never the pooled
           service), so these counters are the process-wide default
           service's — all zero unless ASCEND_CACHE_DIR points at a
           populated persistent tier *)
        Format.printf "exec cache: %a@." Ascend.Exec.Cache.pp_stats
          (Ascend.Exec.Service.stats (Ascend.Exec.Service.default ()));
        Format.printf "wrote %s (load in Perfetto or chrome://tracing)@."
          output;
        Ok ())

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Compile a model and capture its simulation as deterministic Chrome \
          trace-event JSON (Perfetto / chrome://tracing loadable): \
          per-instruction pipe spans and barrier instants on one process \
          lane per fused group, stamped with simulated cycles — the same \
          bytes on every run and under any --jobs/ASCEND_JOBS setting. Also \
          prints a per-category self-time summary.")
    Term.(
      const trace $ trace_model_pos $ trace_model_opt $ core_arg $ batch_arg
      $ trace_output_arg)

(* --- calibrate ---------------------------------------------------- *)

module Calibration = Ascend.Cost.Calibration

(* same model order and dtype gating as [model_core_combos], but keeps
   the graph builder (calibration prices many batch sizes, not one
   batch-1 graph) *)
let calibrate_combos selected_models selected_cores =
  List.concat_map
    (fun (name, build) ->
      let dtype = Graph.dtype (build ~batch:1) in
      List.filter_map
        (fun config ->
          if Config.supports config dtype then Some (name, build, config)
          else None)
        selected_cores)
    selected_models

module Calibration2d = Ascend.Cost.Calibration2d

(* --decode: the 2-D (batch x cache-length) protocol over the LLM
   decode step, one report per fp16-capable selected core *)
let calibrate_decode core_opt max_batch max_len fail_above verbose json_path
    jobs =
  let llm = Ascend.Nn.Llm.tiny_config in
  let selected_cores =
    List.filter
      (fun config -> Config.supports config Ascend.Arch.Precision.Fp16)
      (select_cores core_opt)
  in
  if selected_cores = [] then begin
    prerr_endline
      "error: nothing to calibrate (selected core does not support fp16)";
    2
  end
  else begin
    let service =
      Ascend.Exec.Service.create
        ?jobs:(if jobs <= 0 then None else Some jobs)
        ()
    in
    let results =
      List.map
        (fun config ->
          ( config,
            Calibration2d.run ~budget_pct:fail_above ~service ~core:config
              ~model:"llm-decode"
              ~build:(fun ~batch ~cache_len ->
                Ascend.Nn.Llm.decode ~batch ~cache_len llm)
              ~max_batch ~max_len () ))
        selected_cores
    in
    Ascend.Exec.Service.shutdown service;
    match
      List.filter_map
        (fun ((config : Config.t), r) ->
          match r with
          | Error e -> Some (config.Config.name ^ ": " ^ e)
          | Ok _ -> None)
        results
    with
    | e :: _ ->
      prerr_endline ("error: " ^ e);
      1
    | [] ->
      let reports =
        List.filter_map (fun (_, r) -> Result.to_option r) results
      in
      List.iter
        (fun r -> Format.printf "%a" (Calibration2d.pp ~verbose ()) r)
        reports;
      let worst =
        List.fold_left
          (fun acc (r : Calibration2d.report) ->
            Float.max acc r.Calibration2d.max_abs_pct_error)
          0. reports
      in
      (match json_path with
      | None -> ()
      | Some path ->
        let doc =
          Ascend.Util.Json.Obj
            [
              ("max_batch", Ascend.Util.Json.Int max_batch);
              ("max_len", Ascend.Util.Json.Int max_len);
              ("fail_above_pct", Ascend.Util.Json.Float fail_above);
              ("worst_max_abs_pct_error", Ascend.Util.Json.Float worst);
              ( "combos",
                Ascend.Util.Json.List
                  (List.map Calibration2d.to_json reports) );
            ]
        in
        if path = "-" then
          print_endline (Ascend.Util.Json.to_string ~pretty:true doc)
        else Ascend.Util.Json.write_file path doc);
      Format.printf
        "calibrate --decode: %d core(s), worst max |err| %.2f%% (budget \
         %.2f%%)@."
        (List.length reports) worst fail_above;
      let over =
        List.filter
          (fun (r : Calibration2d.report) ->
            r.Calibration2d.max_abs_pct_error > fail_above)
          reports
      in
      if over = [] then 0
      else begin
        List.iter
          (fun (r : Calibration2d.report) ->
            Format.printf "over budget: %s on %s (max |err| %.2f%%)@."
              r.Calibration2d.model r.Calibration2d.core
              r.Calibration2d.max_abs_pct_error)
          over;
        1
      end
  end

let calibrate_1d model_opt all core_opt max_batch fail_above verbose json_path
    jobs =
  let selected_models = select_models model_opt all in
  let selected_cores = select_cores core_opt in
  let combos = calibrate_combos selected_models selected_cores in
  if combos = [] then begin
    prerr_endline
      "error: nothing to calibrate (selected core does not support the \
       model's dtype)";
    2
  end
  else begin
    let service =
      Ascend.Exec.Service.create
        ?jobs:(if jobs <= 0 then None else Some jobs)
        ()
    in
    let results =
      List.map
        (fun (name, build, config) ->
          ( name,
            config,
            Calibration.run ~budget_pct:fail_above ~service ~core:config
              ~model:name ~build ~max_batch () ))
        combos
    in
    Ascend.Exec.Service.shutdown service;
    let errors =
      List.filter_map
        (fun (name, (config : Config.t), r) ->
          match r with
          | Error e -> Some (name ^ " on " ^ config.Config.name ^ ": " ^ e)
          | Ok _ -> None)
        results
    in
    match errors with
    | e :: _ ->
      prerr_endline ("error: " ^ e);
      1
    | [] ->
      let reports =
        List.filter_map
          (fun (_, _, r) -> Result.to_option r)
          results
      in
      List.iter
        (fun r -> Format.printf "%a" (Calibration.pp ~verbose ()) r)
        reports;
      let worst =
        List.fold_left
          (fun acc (r : Calibration.report) ->
            Float.max acc r.Calibration.max_abs_pct_error)
          0. reports
      in
      let over =
        List.filter
          (fun (r : Calibration.report) ->
            r.Calibration.max_abs_pct_error > fail_above)
          reports
      in
      (match json_path with
      | None -> ()
      | Some path ->
        let doc =
          Ascend.Util.Json.Obj
            [
              ("max_batch", Ascend.Util.Json.Int max_batch);
              ("fail_above_pct", Ascend.Util.Json.Float fail_above);
              ("worst_max_abs_pct_error", Ascend.Util.Json.Float worst);
              ( "combos",
                Ascend.Util.Json.List (List.map Calibration.to_json reports)
              );
            ]
        in
        if path = "-" then
          print_endline (Ascend.Util.Json.to_string ~pretty:true doc)
        else Ascend.Util.Json.write_file path doc);
      Format.printf
        "calibrate: %d combination(s), worst max |err| %.2f%% (budget \
         %.2f%%)@."
        (List.length reports) worst fail_above;
      if over = [] then 0
      else begin
        List.iter
          (fun (r : Calibration.report) ->
            Format.printf "over budget: %s on %s (max |err| %.2f%%)@."
              r.Calibration.model r.Calibration.core
              r.Calibration.max_abs_pct_error)
          over;
        1
      end
  end

let calibrate model_opt all core_opt max_batch max_len decode_flag fail_above
    verbose json_path jobs =
  if decode_flag then
    calibrate_decode core_opt max_batch max_len fail_above verbose json_path
      jobs
  else
    calibrate_1d model_opt all core_opt max_batch fail_above verbose json_path
      jobs

let calibrate_all_arg =
  Arg.(
    value & flag
    & info [ "all" ]
        ~doc:"Calibrate every model in the zoo (default cores: all).")

let calibrate_max_batch_arg =
  Arg.(
    value & opt int 8
    & info [ "max-batch" ] ~docv:"N"
        ~doc:
          "Largest batch size: anchors span 1..N and every batch in \
           between is scored against the oracle.")

let fail_above_arg =
  Arg.(
    value & opt float 5.
    & info [ "fail-above" ] ~docv:"PCT"
        ~doc:
          "Exit non-zero when any combination's max absolute cycle error \
           exceeds this percentage.")

let calibrate_decode_arg =
  Arg.(
    value & flag
    & info [ "decode" ]
        ~doc:
          "Calibrate the 2-D (batch x cache-length) decode-step surrogate \
           of the tiny LLM instead of the 1-D model zoo tables (fp16 cores \
           only).")

let calibrate_max_len_arg =
  Arg.(
    value & opt int 32
    & info [ "max-len" ] ~docv:"TOK"
        ~doc:
          "--decode: largest cache length; anchors and validation probes \
           span 1..N.")

let calibrate_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Also write the per-batch error report as JSON ('-': stdout).")

let calibrate_cmd =
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:
         "Fit the per-model piecewise-linear batch-cost surrogate on anchor \
          batch sizes priced through the cycle-level simulator, then score \
          every batch in 1..max-batch through both tiers and report the \
          surrogate's cycle error (mean and max absolute percentage, per \
          model/core). Non-zero exit when any model exceeds the error \
          budget — the CI gate that keeps '--costing surrogate' honest.")
    Term.(
      const calibrate $ lint_model_arg $ calibrate_all_arg $ lint_core_arg
      $ calibrate_max_batch_arg $ calibrate_max_len_arg $ calibrate_decode_arg
      $ fail_above_arg $ lint_verbose_arg $ calibrate_json_arg $ lint_jobs_arg)

(* --- list --------------------------------------------------------- *)

let list_all () =
  Format.printf "models:@.";
  List.iter (fun (name, _) -> Format.printf "  %s@." name) models;
  Format.printf "@.core versions (paper Table 5):@.";
  let module Table = Ascend.Util.Table in
  let module Precision = Ascend.Arch.Precision in
  let t =
    Table.create
      ~header:[ "core"; "freq GHz"; "cube"; "native"; "perf/cyc"; "vector B";
                "L1 KiB"; "UB KiB"; "LLC GB/s"; "precisions" ]
      ()
  in
  List.iter
    (fun (name, (c : Config.t)) ->
      Table.add_row t
        [
          name;
          Table.cell_float c.Config.frequency_ghz;
          Printf.sprintf "%dx%dx%d" c.Config.cube.Config.m c.Config.cube.Config.k
            c.Config.cube.Config.n;
          Precision.name c.Config.native_precision;
          string_of_int
            (Config.flops_per_cycle c ~precision:c.Config.native_precision);
          string_of_int c.Config.vector_width_bytes;
          string_of_int (c.Config.buffers.Config.l1_bytes / 1024);
          string_of_int (c.Config.buffers.Config.ub_bytes / 1024);
          (match c.Config.bandwidth.Config.llc_gb_s with
          | Some v -> Table.cell_float ~decimals:1 v
          | None -> "-");
          String.concat "/"
            (List.map Precision.name c.Config.supported_precisions);
        ])
    cores;
  Table.print t;
  0

let list_cmd =
  Cmd.v
    (Cmd.info "list"
       ~doc:"List available models and the Table-5 core configurations.")
    Term.(const list_all $ const ())

(* --- consolidated usage ------------------------------------------- *)

(* one screen listing every subcommand with its flags; printed when the
   CLI is invoked without a subcommand (README examples are synced
   against this block) *)
let usage =
  {|ascend_cli - Ascend architectural simulator CLI

usage: ascend_cli COMMAND [OPTIONS]

  list
      List available models and the Table-5 core configurations.

  simulate MODEL [--core CORE] [--batch N] [--training]
      Compile and simulate a model on one core.

  profile MODEL [--core CORE] [--batch N] [--training]
      Per-layer cube/vector cycle profile (paper Figures 4-8).

  disasm MODEL [--core CORE] [--batch N] [--layer I]
      Disassemble the generated program of one fused layer.

  streams MODEL [--core CORE] [--batch N] [--cores N]
      Graph-engine stream decomposition scheduled across cores.

  serve MODEL[,MODEL...] [--core CORE] [--cores N] [--rate R[,R...]]
        [--duration S] [--batch-max B] [--batch-delay-ms MS]
        [--queue-depth N] [--slo-ms MS[,MS...]] [--priority P[,P...]]
        [--process uniform|poisson|bursty] [--burst-factor F]
        [--burst-period-ms MS] [--seed N] [--closed CLIENTS]
        [--think-ms MS] [--bucket-ms MS] [--costing exact|surrogate]
        [--json FILE] [--trace FILE]
      Request-level serving simulation: seeded load, dynamic batching,
      QoS admission control, SLO metrics; --costing surrogate prices
      batches by the calibrated interpolation table instead of the
      cycle-level path; --trace captures the run as Chrome trace-event
      JSON.

  decode [--core CORE] [--rate R] [--duration S] [--seed N]
         [--process uniform|poisson|bursty] [--prompt-mean TOK]
         [--prompt-max TOK] [--output-mean TOK] [--output-max TOK]
         [--fixed-prompt TOK] [--fixed-output TOK] [--batch-max B]
         [--hbm-mb MB] [--max-cache-len TOK]
         [--mode continuous|static|compare] [--small-llm]
         [--costing exact|surrogate] [--json FILE] [--trace FILE]
      LLM decode serving: seeded generation requests (geometric or
      fixed prompt/output lengths) through the continuous batcher —
      join/leave at token boundaries, prefill interleaved with decode
      steps, KV caches budgeted against HBM — with TTFT/ITL
      percentiles and tokens/s goodput; --mode compare also runs the
      static-batching baseline and reports the speedup.

  fleet MODEL[,MODEL...] [--core CORE] [--nodes N] [--cores-per-node N]
        [--policy round-robin|least-loaded|affinity] [--replicas R[,R...]]
        [--rate R[,R...]] [--duration S] [--slo-ms MS[,MS...]]
        [--priority P[,P...]] [--train-nodes K] [--train-model MODEL]
        [--train-batch N] [--seed N] [--costing exact|surrogate]
        [--json FILE] [--pagein-json FILE] [--trace FILE]
      Multi-node inference fleet: policy routing against a
      replication/placement plan (cold models page in over the server
      interconnect), optional colocated training competing for
      bandwidth, per-node and cross-node SLO metrics; --pagein-json
      emits the observed per-node page-in counts for the differential
      gate against lint --placement.

  lint [MODEL | --all] [--core CORE] [--soc] [--cores N] [--llc-mb MB]
       [--hbm-mb MB] [--cluster] [--times closed|schedule]
       [--placement MODEL[,MODEL...]] [--nodes N] [--policy P]
       [--replicas R[,R...]] [--hbm-gb G] [--pagein-json FILE]
       [--json FILE] [--strict] [--verbose] [--jobs N]
      Statically verify generated programs (deadlocks, RAW/WAR/WAW
      hazards, buffer peaks, flag leaks); --soc lifts the analysis to
      the whole-SoC fused-group schedule (cross-core races, schedule
      deadlocks, LLC/HBM overcommit); --cluster verifies collective
      step schedules over the server/fat-tree links (send/recv
      matching, deadlock, link overcommit, reduction completeness)
      and holds schedule-derived times within 1e-6 of the closed
      forms (--times emits either side for cmp); --placement lints a
      fleet placement plan (HBM overcommit, predicted page-ins).
      Non-zero exit on errors (--strict: on any finding).

  sanitize [MODEL | --all] [--core CORE] [--json FILE] [--strict]
           [--verbose] [--jobs N]
      Replay generated programs through the dynamic shadow-state
      sanitizer (uninitialized reads, footprint overflows, cross-pipe
      hazards, runtime capacity, flag leaks); emits the same JSON
      shape as lint --soc, so sweeps that agree compare byte-equal.

  calibrate [MODEL | --all | --decode] [--core CORE] [--max-batch N]
            [--max-len TOK] [--fail-above PCT] [--json FILE]
            [--verbose] [--jobs N]
      Fit the per-model batch-cost surrogate on cycle-level anchor
      prices and score every batch 1..max-batch against the oracle;
      non-zero exit when any model's max cycle error exceeds the
      budget (default 5%).  --decode calibrates the 2-D
      (batch x cache-length) decode-step grid of the tiny LLM
      instead, validated over anchor lengths and bracket midpoints.

  trace MODEL [--model MODEL] [--core CORE] [--batch N] [-o FILE]
      Deterministic Chrome trace of the compiled model's simulation
      (per-instruction pipe spans, barrier instants) plus a
      per-category self-time summary; byte-identical across runs and
      --jobs/ASCEND_JOBS settings.

models: resnet50 resnet18 mobilenet vgg16 bert-base bert-large gesture
        siamese wide-deep pointnet face-detect fpn-detector
cores:  tiny lite mini standard max   (--core, default: max)

Run 'ascend_cli COMMAND --help' for full option documentation.|}

let usage_term =
  Term.(
    const (fun () ->
        print_endline usage;
        0)
    $ const ())

let () =
  let info =
    Cmd.info "ascend_cli" ~version:Ascend.version
      ~doc:"Ascend architectural simulator command-line interface."
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default:usage_term info
          [ simulate_cmd; profile_cmd; disasm_cmd; streams_cmd; serve_cmd;
            decode_cmd; fleet_cmd; lint_cmd; sanitize_cmd; calibrate_cmd;
            list_cmd; trace_cmd ]))
