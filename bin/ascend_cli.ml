(* Command-line front end to the simulator.

     dune exec bin/ascend_cli.exe -- simulate resnet50 --core max
     dune exec bin/ascend_cli.exe -- profile bert-large --core max --training
     dune exec bin/ascend_cli.exe -- disasm mobilenet --core lite --layer 3
     dune exec bin/ascend_cli.exe -- streams siamese --core standard --cores 4
     dune exec bin/ascend_cli.exe -- trace gesture --core tiny -o trace.json
     dune exec bin/ascend_cli.exe -- list

   Run with no subcommand for the consolidated usage summary. *)

open Cmdliner
module Config = Ascend.Arch.Config
module Engine = Ascend.Compiler.Engine
module Graph = Ascend.Nn.Graph

let models : (string * (batch:int -> Graph.t)) list =
  [
    ("resnet50", fun ~batch -> Ascend.Nn.Resnet.v1_5 ~batch ());
    ("resnet18", fun ~batch -> Ascend.Nn.Resnet.v1_5_18 ~batch ());
    ("mobilenet", fun ~batch -> Ascend.Nn.Mobilenet.v2 ~batch ());
    ("vgg16", fun ~batch -> Ascend.Nn.Vgg.v16 ~batch ());
    ("bert-base", fun ~batch -> Ascend.Nn.Bert.base ~batch ~seq_len:128 ());
    ("bert-large", fun ~batch -> Ascend.Nn.Bert.large ~batch ~seq_len:128 ());
    ("gesture", fun ~batch -> Ascend.Nn.Gesture.build ~batch ());
    ("siamese", fun ~batch -> Ascend.Nn.Siamese.build ~batch ());
    ("wide-deep", fun ~batch -> Ascend.Nn.Wide_deep.default ~batch ());
    ("pointnet", fun ~batch -> Ascend.Nn.Pointnet.build ~batch ());
    ("face-detect", fun ~batch -> Ascend.Nn.Face_detect.build ~batch ());
    ("fpn-detector", fun ~batch -> Ascend.Nn.Fpn_detector.build ~batch ());
  ]

let cores =
  [
    ("tiny", Config.tiny);
    ("lite", Config.lite);
    ("mini", Config.mini);
    ("standard", Config.standard);
    ("max", Config.max);
  ]

let model_conv =
  let parse s =
    match List.assoc_opt s models with
    | Some f -> Ok f
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown model %s (try: %s)" s
             (String.concat ", " (List.map fst models))))
  in
  Arg.conv (parse, fun ppf _ -> Format.pp_print_string ppf "<model>")

let named_model_conv =
  let parse s =
    match List.assoc_opt s models with
    | Some f -> Ok (s, f)
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown model %s (try: %s)" s
             (String.concat ", " (List.map fst models))))
  in
  Arg.conv (parse, fun ppf (name, _) -> Format.pp_print_string ppf name)

let core_conv =
  let parse s =
    match List.assoc_opt s cores with
    | Some c -> Ok c
    | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown core %s (try: %s)" s
             (String.concat ", " (List.map fst cores))))
  in
  Arg.conv (parse, fun ppf (c : Config.t) ->
      Format.pp_print_string ppf c.Config.name)

let model_arg =
  Arg.(required & pos 0 (some model_conv) None & info [] ~docv:"MODEL")

let core_arg =
  Arg.(value & opt core_conv Config.max & info [ "core" ] ~docv:"CORE"
         ~doc:"Core version: tiny, lite, mini, standard or max.")

let batch_arg =
  Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc:"Batch size.")

let training_arg =
  Arg.(value & flag & info [ "training" ] ~doc:"Simulate forward + backward.")

let run_model build config ~batch ~training =
  let graph = build ~batch in
  let run = if training then Engine.run_training else Engine.run_inference in
  run config graph

let exit_of = function
  | Ok () -> 0
  | Error e ->
    prerr_endline ("error: " ^ e);
    1

(* --- simulate ----------------------------------------------------- *)

let simulate build config batch training =
  exit_of
    (match run_model build config ~batch ~training with
    | Error _ as e -> e
    | Ok r ->
      Format.printf
        "%s on %s (batch %d%s): %a, %.2f W average, %.3f mJ, %d layers@."
        r.Engine.graph_name config.Config.name batch
        (if training then ", training" else "")
        Ascend.Util.Units.pp_seconds (Engine.seconds r)
        (Engine.average_power_w r)
        (r.Engine.total_energy_j *. 1e3)
        (List.length r.Engine.layers);
      Format.printf "throughput: %.1f items/s@."
        (Engine.inferences_per_second r ~batch);
      Ok ())

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"Compile and simulate a model on one core.")
    Term.(const simulate $ model_arg $ core_arg $ batch_arg $ training_arg)

(* --- profile ------------------------------------------------------ *)

let profile build config batch training =
  exit_of
    (match run_model build config ~batch ~training with
    | Error _ as e -> e
    | Ok r ->
      Format.printf "%a@." Engine.pp_layer_table r;
      Ok ())

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Per-layer cube/vector cycle profile (the paper's Figures 4-8).")
    Term.(const profile $ model_arg $ core_arg $ batch_arg $ training_arg)

(* --- disasm ------------------------------------------------------- *)

let layer_arg =
  Arg.(value & opt int 0 & info [ "layer" ] ~docv:"I" ~doc:"Layer index.")

let disasm build config batch layer =
  exit_of
    (match run_model build config ~batch ~training:false with
    | Error e -> Error e
    | Ok r -> (
      match List.nth_opt r.Engine.layers layer with
      | None ->
        Error (Printf.sprintf "layer %d out of range (0..%d)" layer
                 (List.length r.Engine.layers - 1))
      | Some l ->
        Format.printf "%a@." Ascend.Isa.Program.pp l.Engine.program;
        let instrs = l.Engine.program.Ascend.Isa.Program.instructions in
        Format.printf
          "instruction stream: %d instructions, %d B raw, compression ratio \
           %.2f@."
          (List.length instrs)
          (Bytes.length (Ascend.Isa.Encoding.encode instrs))
          (Ascend.Isa.Encoding.compression_ratio instrs);
        Ok ()))

let disasm_cmd =
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Disassemble the generated program of one fused layer.")
    Term.(const disasm $ model_arg $ core_arg $ batch_arg $ layer_arg)

(* --- streams ------------------------------------------------------ *)

let cores_arg =
  Arg.(value & opt int 2 & info [ "cores" ] ~docv:"N" ~doc:"SoC core count.")

let streams build config batch cores =
  exit_of
    (match
       Ascend.Compiler.Graph_engine.plan config (build ~batch)
     with
    | Error _ as e -> e
    | Ok p ->
      Format.printf "%a@." Ascend.Compiler.Graph_engine.pp p;
      Format.printf
        "serial %d cycles; makespan on %d cores: %d cycles (%.2fx speedup)@."
        (Ascend.Compiler.Graph_engine.serial_cycles p)
        cores
        (Ascend.Compiler.Graph_engine.makespan p ~cores)
        (float_of_int (Ascend.Compiler.Graph_engine.serial_cycles p)
        /. float_of_int (Ascend.Compiler.Graph_engine.makespan p ~cores));
      Ok ())

let streams_cmd =
  Cmd.v
    (Cmd.info "streams"
       ~doc:"Decompose a model into streams (the §5.1 graph engine) and \
             schedule them across cores.")
    Term.(const streams $ model_arg $ core_arg $ batch_arg $ cores_arg)

(* --- serve -------------------------------------------------------- *)

module Serve = Ascend.Serving.Serve
module Load_gen = Ascend.Serving.Load_gen

let serve_models_arg =
  Arg.(
    required
    & pos 0 (some (list named_model_conv)) None
    & info [] ~docv:"MODEL[,MODEL...]"
        ~doc:"Comma-separated list of models to serve concurrently.")

let rate_arg =
  Arg.(
    value
    & opt (list float) [ 100. ]
    & info [ "rate" ] ~docv:"R"
        ~doc:
          "Open-loop arrival rate in requests/s, one value per model (a \
           single value applies to all).")

let duration_arg =
  Arg.(
    value & opt float 1.0
    & info [ "duration" ] ~docv:"S" ~doc:"Load window in simulated seconds.")

let batch_max_arg =
  Arg.(
    value & opt int 8
    & info [ "batch-max" ] ~docv:"B" ~doc:"Dynamic batcher size bound.")

let batch_delay_arg =
  Arg.(
    value & opt float 2.0
    & info [ "batch-delay-ms" ] ~docv:"MS"
        ~doc:"Max time a request may wait for batch peers.")

let queue_depth_arg =
  Arg.(
    value & opt int 64
    & info [ "queue-depth" ] ~docv:"N"
        ~doc:"Admission bound: requests arriving past this queue depth are \
              shed.")

let slo_arg =
  Arg.(
    value
    & opt (list float) [ 50. ]
    & info [ "slo-ms" ] ~docv:"MS"
        ~doc:"Latency SLO per model (a single value applies to all).")

let priority_arg =
  Arg.(
    value
    & opt (list int) [ 0 ]
    & info [ "priority" ] ~docv:"P"
        ~doc:"QoS priority per model, higher wins (a single value applies \
              to all).")

let process_arg =
  Arg.(
    value
    & opt (enum [ ("uniform", `Uniform); ("poisson", `Poisson);
                  ("bursty", `Bursty) ])
        `Poisson
    & info [ "process" ] ~docv:"P"
        ~doc:"Arrival process: uniform, poisson or bursty.")

let burst_factor_arg =
  Arg.(
    value & opt float 4.0
    & info [ "burst-factor" ] ~docv:"F"
        ~doc:"Bursty process: on-phase rate multiplier (mean rate is \
              preserved).")

let burst_period_arg =
  Arg.(
    value & opt float 100.0
    & info [ "burst-period-ms" ] ~docv:"MS"
        ~doc:"Bursty process: on/off window period.")

let seed_arg =
  Arg.(
    value & opt int 42
    & info [ "seed" ] ~docv:"N"
        ~doc:"PRNG seed; the same seed reproduces the run bit-for-bit.")

let closed_arg =
  Arg.(
    value & opt int 0
    & info [ "closed" ] ~docv:"CLIENTS"
        ~doc:"Closed-loop mode with this many concurrent clients per model \
              (0: open loop at --rate).")

let think_arg =
  Arg.(
    value & opt float 0.
    & info [ "think-ms" ] ~docv:"MS"
        ~doc:"Closed-loop mean think time between a completion and the \
              client's next request.")

let bucket_arg =
  Arg.(
    value & opt float 50.
    & info [ "bucket-ms" ] ~docv:"MS" ~doc:"Occupancy-series bucket width.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Also write the full metrics report as JSON ('-': stdout).")

let serve_trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Also capture the run's observability trace (request lifecycle \
           spans, queue-depth and shed counters, batch spans, cost-oracle \
           compile+simulate pipe spans) as Chrome trace-event JSON.")

let broadcast ~what n = function
  | [ x ] -> Ok (List.init n (fun _ -> x))
  | l when List.length l = n -> Ok l
  | l ->
    Error
      (Printf.sprintf "%s: expected 1 or %d value(s), got %d" what n
         (List.length l))

let serve models core cores rates duration batch_max delay_ms queue_depth
    slos priorities process burst_factor burst_period_ms seed closed think_ms
    bucket_ms json_path trace_path =
  let n = List.length models in
  let ( let* ) = Result.bind in
  exit_of
    (let* rates = broadcast ~what:"--rate" n rates in
     let* slos = broadcast ~what:"--slo-ms" n slos in
     let* priorities = broadcast ~what:"--priority" n priorities in
     let process =
       match process with
       | `Uniform -> Load_gen.Uniform
       | `Poisson -> Load_gen.Poisson
       | `Bursty ->
         Load_gen.Bursty
           { factor = burst_factor; period_s = burst_period_ms /. 1e3 }
     in
     let specs =
       List.mapi
         (fun i ((name, build), (rate, (slo_ms, priority))) ->
           let model_seed = seed + (7919 * i) in
           let workload =
             if closed > 0 then
               Serve.Closed_loop
                 { clients = closed; think_s = think_ms /. 1e3;
                   seed = model_seed }
             else
               Serve.Open_loop
                 (Load_gen.create ~process ~rate_per_s:rate
                    ~duration_s:duration ~seed:model_seed ())
           in
           { Serve.name; build; priority; slo_ms; workload })
         (List.combine models
            (List.combine rates (List.combine slos priorities)))
     in
     let config =
       {
         Serve.core;
         cores;
         max_batch = batch_max;
         max_delay_s = delay_ms /. 1e3;
         queue_depth;
         duration_s = duration;
         bucket_s = bucket_ms /. 1e3;
       }
     in
     let collector =
       Option.map
         (fun _ -> Ascend.Obs.Collector.create ~capacity:262144 ())
         trace_path
     in
     let* r =
       match collector with
       | None -> Serve.run config specs
       | Some c ->
         Ascend.Obs.Hook.with_collector c (fun () -> Serve.run config specs)
     in
     Format.printf "%a" Serve.pp r;
     (match json_path with
     | None -> ()
     | Some "-" ->
       print_endline (Ascend.Util.Json.to_string ~pretty:true (Serve.to_json r))
     | Some path -> Ascend.Util.Json.write_file path (Serve.to_json r));
     (match (trace_path, collector) with
     | Some path, Some c ->
       Ascend.Obs.Chrome_trace.write_file path c;
       Format.printf "trace: wrote %s (%d events, %d dropped)@." path
         (Ascend.Obs.Collector.length c)
         (Ascend.Obs.Collector.dropped c)
     | _ -> ());
     Ok ())

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Simulate request-level serving: seeded load generation, dynamic \
          batching, QoS admission control and SLO metrics (p50/p95/p99, \
          goodput, rejection rate, per-core utilization) over the §5.2 \
          multi-core scheduler.")
    Term.(
      const serve $ serve_models_arg $ core_arg $ cores_arg $ rate_arg
      $ duration_arg $ batch_max_arg $ batch_delay_arg $ queue_depth_arg
      $ slo_arg $ priority_arg $ process_arg $ burst_factor_arg
      $ burst_period_arg $ seed_arg $ closed_arg $ think_arg $ bucket_arg
      $ json_arg $ serve_trace_arg)

(* --- lint --------------------------------------------------------- *)

module Codegen = Ascend.Compiler.Codegen
module Fusion = Ascend.Compiler.Fusion
module Verify = Ascend.Verify

(* every codegen option combination: sync mode x double-buffering x
   weight sparsity — the axes of paper Figure 3's ablations *)
let lint_option_combos =
  List.concat_map
    (fun sync_mode ->
      List.concat_map
        (fun double_buffer ->
          List.map
            (fun weight_sparsity ->
              { Codegen.default_options with
                sync_mode; double_buffer; weight_sparsity })
            [ None; Some 0.5 ])
        [ true; false ])
    [ Codegen.Flags; Codegen.Coarse_barriers ]

let describe_options (o : Codegen.options) =
  Printf.sprintf "%s,db=%b,sparsity=%s"
    (match o.Codegen.sync_mode with
    | Codegen.Flags -> "flags"
    | Codegen.Coarse_barriers -> "barriers")
    o.Codegen.double_buffer
    (match o.Codegen.weight_sparsity with
    | None -> "none"
    | Some r -> Printf.sprintf "%.2f" r)

(* each combo renders its findings into its own buffer so combos can be
   verified on worker domains and the reports printed in submission
   order — `--jobs N` output is byte-identical to `--jobs 1` *)
let lint_one ~verbose config options name graph =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let n_findings = ref 0 in
  let n_programs = ref 0 in
  (try
     List.iter
       (fun (grp, p) ->
         incr n_programs;
         match Verify.analyze config p with
         | [] -> ()
         | findings ->
           n_findings := !n_findings + List.length findings;
           Format.fprintf ppf "%s / %s / %s / %s:@." name config.Config.name
             (describe_options options) grp.Fusion.tag;
           Format.fprintf ppf "%a" Verify.pp_report findings)
       (Codegen.graph_programs ~options config graph)
   with Invalid_argument e ->
     incr n_findings;
     Format.fprintf ppf "%s / %s / %s: codegen rejected: %s@." name
       config.Config.name (describe_options options) e);
  if verbose && !n_findings = 0 then
    Format.fprintf ppf "%s / %s / %s: %d program(s) clean@." name
      config.Config.name (describe_options options) !n_programs;
  Format.pp_print_flush ppf ();
  (Buffer.contents buf, !n_findings)

let lint model_opt all core_opt verbose jobs =
  let selected_models =
    match (model_opt, all) with
    | Some (name, build), _ -> [ (name, build) ]
    | None, true -> models
    | None, false ->
      prerr_endline "error: pass a MODEL or --all";
      exit 2
  in
  let selected_cores =
    match core_opt with Some c -> [ c ] | None -> List.map snd cores
  in
  let combo_list =
    List.concat_map
      (fun (name, build) ->
        let graph = build ~batch:1 in
        List.concat_map
          (fun config ->
            if Config.supports config (Graph.dtype graph) then
              List.map
                (fun options -> (name, graph, config, options))
                lint_option_combos
            else [])
          selected_cores)
      selected_models
  in
  let pool =
    Ascend.Util.Domain_pool.create
      ?jobs:(if jobs <= 0 then None else Some jobs)
      ()
  in
  let results =
    Ascend.Util.Domain_pool.map pool
      (fun (name, graph, config, options) ->
        lint_one ~verbose config options name graph)
      combo_list
  in
  Ascend.Util.Domain_pool.shutdown pool;
  let total = ref 0 in
  let combos = ref (List.length combo_list) in
  List.iter
    (fun (output, n) ->
      print_string output;
      total := !total + n)
    results;
  if !combos = 0 then begin
    prerr_endline
      "error: nothing to lint (selected core does not support the model's \
       dtype)";
    2
  end
  else if !total = 0 then begin
    Format.printf "lint: %d model/core/option combination(s) clean@." !combos;
    0
  end
  else begin
    Format.printf "lint: %d finding(s) across %d combination(s)@." !total
      !combos;
    1
  end

let lint_model_arg =
  Arg.(value & pos 0 (some named_model_conv) None & info [] ~docv:"MODEL")

let lint_all_arg =
  Arg.(value & flag
       & info [ "all" ] ~doc:"Lint every model in the zoo (default cores: all).")

let lint_core_arg =
  Arg.(value & opt (some core_conv) None
       & info [ "core" ] ~docv:"CORE"
           ~doc:"Restrict to one core version (default: all Table-5 cores).")

let lint_verbose_arg =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Report clean combinations too.")

let lint_jobs_arg =
  Arg.(value & opt int 0
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Verify combinations on $(docv) domains (0 = one per \
                 recommended domain). Output is byte-identical regardless \
                 of $(docv).")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify generated programs (happens-before deadlock \
          analysis, RAW/WAR/WAW buffer hazards, buffer-peak cross-checks, \
          flag leaks) across codegen option combinations. Exits non-zero on \
          any finding.")
    Term.(const lint $ lint_model_arg $ lint_all_arg $ lint_core_arg
          $ lint_verbose_arg $ lint_jobs_arg)

(* --- trace -------------------------------------------------------- *)

module Exec_trace = Ascend.Exec.Trace
module Obs = Ascend.Obs

let trace_model_pos =
  Arg.(value & pos 0 (some named_model_conv) None & info [] ~docv:"MODEL")

let trace_model_opt =
  Arg.(
    value
    & opt (some named_model_conv) None
    & info [ "model" ] ~docv:"MODEL"
        ~doc:"Model to trace (alternative to the positional argument).")

let trace_output_arg =
  Arg.(
    value & opt string "trace.json"
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Chrome trace-event JSON output path.")

let trace model_pos model_opt core batch output =
  let chosen =
    match (model_pos, model_opt) with
    | Some m, None | None, Some m -> Ok m
    | Some _, Some _ ->
      Error "pass MODEL either positionally or via --model, not both"
    | None, None -> Error "pass a MODEL (positionally or via --model)"
  in
  match chosen with
  | Error e ->
    prerr_endline ("error: " ^ e);
    2
  | Ok (name, build) ->
    exit_of
      (match Exec_trace.model core (build ~batch) with
      | Error _ as e -> e
      | Ok c ->
        Ascend.Util.Json.write_file output c.Exec_trace.json;
        print_string (Obs.Summary.render c.Exec_trace.summary);
        Format.printf "%s on %s (batch %d): %d simulated cycles@." name
          core.Config.name batch c.Exec_trace.total_cycles;
        Format.printf "wrote %s (load in Perfetto or chrome://tracing)@."
          output;
        Ok ())

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Compile a model and capture its simulation as deterministic Chrome \
          trace-event JSON (Perfetto / chrome://tracing loadable): \
          per-instruction pipe spans and barrier instants on one process \
          lane per fused group, stamped with simulated cycles — the same \
          bytes on every run and under any --jobs/ASCEND_JOBS setting. Also \
          prints a per-category self-time summary.")
    Term.(
      const trace $ trace_model_pos $ trace_model_opt $ core_arg $ batch_arg
      $ trace_output_arg)

(* --- list --------------------------------------------------------- *)

let list_all () =
  Format.printf "models:@.";
  List.iter (fun (name, _) -> Format.printf "  %s@." name) models;
  Format.printf "@.core versions (paper Table 5):@.";
  let module Table = Ascend.Util.Table in
  let module Precision = Ascend.Arch.Precision in
  let t =
    Table.create
      ~header:[ "core"; "freq GHz"; "cube"; "native"; "perf/cyc"; "vector B";
                "L1 KiB"; "UB KiB"; "LLC GB/s"; "precisions" ]
      ()
  in
  List.iter
    (fun (name, (c : Config.t)) ->
      Table.add_row t
        [
          name;
          Table.cell_float c.Config.frequency_ghz;
          Printf.sprintf "%dx%dx%d" c.Config.cube.Config.m c.Config.cube.Config.k
            c.Config.cube.Config.n;
          Precision.name c.Config.native_precision;
          string_of_int
            (Config.flops_per_cycle c ~precision:c.Config.native_precision);
          string_of_int c.Config.vector_width_bytes;
          string_of_int (c.Config.buffers.Config.l1_bytes / 1024);
          string_of_int (c.Config.buffers.Config.ub_bytes / 1024);
          (match c.Config.bandwidth.Config.llc_gb_s with
          | Some v -> Table.cell_float ~decimals:1 v
          | None -> "-");
          String.concat "/"
            (List.map Precision.name c.Config.supported_precisions);
        ])
    cores;
  Table.print t;
  0

let list_cmd =
  Cmd.v
    (Cmd.info "list"
       ~doc:"List available models and the Table-5 core configurations.")
    Term.(const list_all $ const ())

(* --- consolidated usage ------------------------------------------- *)

(* one screen listing every subcommand with its flags; printed when the
   CLI is invoked without a subcommand (README examples are synced
   against this block) *)
let usage =
  {|ascend_cli - Ascend architectural simulator CLI

usage: ascend_cli COMMAND [OPTIONS]

  list
      List available models and the Table-5 core configurations.

  simulate MODEL [--core CORE] [--batch N] [--training]
      Compile and simulate a model on one core.

  profile MODEL [--core CORE] [--batch N] [--training]
      Per-layer cube/vector cycle profile (paper Figures 4-8).

  disasm MODEL [--core CORE] [--batch N] [--layer I]
      Disassemble the generated program of one fused layer.

  streams MODEL [--core CORE] [--batch N] [--cores N]
      Graph-engine stream decomposition scheduled across cores.

  serve MODEL[,MODEL...] [--core CORE] [--cores N] [--rate R[,R...]]
        [--duration S] [--batch-max B] [--batch-delay-ms MS]
        [--queue-depth N] [--slo-ms MS[,MS...]] [--priority P[,P...]]
        [--process uniform|poisson|bursty] [--burst-factor F]
        [--burst-period-ms MS] [--seed N] [--closed CLIENTS]
        [--think-ms MS] [--bucket-ms MS] [--json FILE] [--trace FILE]
      Request-level serving simulation: seeded load, dynamic batching,
      QoS admission control, SLO metrics; --trace captures the run as
      Chrome trace-event JSON.

  lint [MODEL | --all] [--core CORE] [--verbose] [--jobs N]
      Statically verify generated programs (deadlocks, RAW/WAR/WAW
      hazards, buffer peaks, flag leaks); non-zero exit on findings.

  trace MODEL [--model MODEL] [--core CORE] [--batch N] [-o FILE]
      Deterministic Chrome trace of the compiled model's simulation
      (per-instruction pipe spans, barrier instants) plus a
      per-category self-time summary; byte-identical across runs and
      --jobs/ASCEND_JOBS settings.

models: resnet50 resnet18 mobilenet vgg16 bert-base bert-large gesture
        siamese wide-deep pointnet face-detect fpn-detector
cores:  tiny lite mini standard max   (--core, default: max)

Run 'ascend_cli COMMAND --help' for full option documentation.|}

let usage_term =
  Term.(
    const (fun () ->
        print_endline usage;
        0)
    $ const ())

let () =
  let info =
    Cmd.info "ascend_cli" ~version:Ascend.version
      ~doc:"Ascend architectural simulator command-line interface."
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default:usage_term info
          [ simulate_cmd; profile_cmd; disasm_cmd; streams_cmd; serve_cmd;
            lint_cmd; list_cmd; trace_cmd ]))
